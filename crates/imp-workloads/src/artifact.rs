//! Shareable, serializable workload artifacts: record a generated
//! workload once, replay it everywhere.
//!
//! A [`BuiltArtifact`] wraps a [`Built`] in an `Arc` so one generated
//! workload (op streams + functional-memory image + algorithm result)
//! can back any number of simulator configurations without re-running
//! the generator — the build-once path `Sweep` uses, and the unit a
//! `.imptrace` file persists.
//!
//! On disk the artifact is a standard `imp_trace::file` container whose
//! payload section carries the algorithm result (8 bytes, `f64` LE),
//! the region/placement records (region count, then per region: name,
//! extent and declared [`PagePolicy`]), and finally the
//! [`FunctionalMemory::snapshot`] image — so a saved trace replays with
//! the genuine index-array contents IMP reads *and* the page placement
//! the generator declared.
//!
//! ```no_run
//! use imp_workloads::{by_name, BuiltArtifact, Scale, WorkloadParams};
//!
//! let params = WorkloadParams::new(16, Scale::Tiny);
//! let built = by_name("spmv").unwrap().build(&params);
//! let artifact = BuiltArtifact::from(built);
//! artifact.save("spmv.imptrace").unwrap();
//!
//! // Later (any process): replay through the registry.
//! let replayed = by_name("trace:spmv.imptrace").unwrap();
//! let again = replayed.try_build(&params).unwrap();
//! assert_eq!(again.result, artifact.result());
//! ```

use crate::{Built, Workload, WorkloadParams};
use imp_common::{MemRegion, PagePolicy};
use imp_mem::{FunctionalMemory, SnapshotError};
use imp_trace::{Program, TraceError, TraceFile};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An immutable, cheaply cloneable handle to one generated workload.
///
/// Cloning bumps one reference count; the program streams and memory
/// pages inside are themselves `Arc`-backed, so feeding the artifact to
/// a simulator (`program().clone()` + `mem().clone()`) copies nothing.
#[derive(Clone, Debug)]
pub struct BuiltArtifact {
    inner: Arc<Built>,
}

impl From<Built> for BuiltArtifact {
    fn from(mut built: Built) -> Self {
        built.program.freeze();
        BuiltArtifact {
            inner: Arc::new(built),
        }
    }
}

impl BuiltArtifact {
    /// The multicore op streams (frozen; clones share them).
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// The functional-memory image (copy-on-write; clones share pages).
    pub fn mem(&self) -> &FunctionalMemory {
        &self.inner.mem
    }

    /// The algorithm's functional result (see [`Built::result`]).
    pub fn result(&self) -> f64 {
        self.inner.result
    }

    /// The generator's region/placement records (see
    /// [`Built::regions`]); empty for program-only traces.
    pub fn regions(&self) -> &[MemRegion] {
        &self.inner.regions
    }

    /// Materializes an owned [`Built`] sharing this artifact's storage.
    pub fn to_built(&self) -> Built {
        Built {
            program: self.inner.program.clone(),
            mem: self.inner.mem.clone(),
            result: self.inner.result,
            regions: self.inner.regions.clone(),
        }
    }

    /// Writes the artifact as an `.imptrace` file: program streams plus
    /// a payload carrying the result, the region/placement records and
    /// the memory image.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as
    /// [`ArtifactError::Trace`]`(`[`TraceError::Io`]`)`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let mut payload = self.inner.result.to_le_bytes().to_vec();
        encode_regions(&self.inner.regions, &mut payload);
        payload.extend_from_slice(&self.inner.mem.snapshot());
        TraceFile::with_payload(self.inner.program.clone(), payload).save(path)?;
        Ok(())
    }

    /// Reads an artifact back from an `.imptrace` file.
    ///
    /// A program-only trace (empty payload — what `Program::save` and
    /// external recorders produce) loads with an empty memory image, no
    /// regions and a `NaN` result: the op streams replay, IMP's
    /// speculative index reads see zeroes, every address translates at
    /// the base page size, and no algorithm result is claimed.
    ///
    /// # Errors
    ///
    /// Malformed containers surface as [`ArtifactError::Trace`]; a
    /// well-formed container whose non-empty payload is not an artifact
    /// payload (too short, corrupt region records, or a corrupt memory
    /// image) as the other variants.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let tf = TraceFile::load(path)?;
        let (result, regions, mem) = if tf.payload.is_empty() {
            (f64::NAN, Vec::new(), FunctionalMemory::new())
        } else {
            if tf.payload.len() < 8 {
                return Err(ArtifactError::ShortPayload(tf.payload.len()));
            }
            let (result_bytes, rest) = tf.payload.split_at(8);
            let result = f64::from_le_bytes(result_bytes.try_into().expect("8 bytes"));
            let (regions, image) = decode_regions(rest)?;
            (result, regions, FunctionalMemory::restore(image)?)
        };
        Ok(BuiltArtifact::from(Built {
            program: tf.program,
            mem,
            result,
            regions,
        }))
    }
}

/// Marks a region-records section in the artifact payload. Payloads
/// written before regions existed go straight from the result field to
/// the memory image, whose first 8 bytes are its page *count* — this
/// marker read as a count would claim ~10^18 pages, so the two layouts
/// cannot collide and old artifacts keep loading (with no regions).
const REGIONS_MAGIC: [u8; 8] = *b"IMPREGN1";

/// Serializes the region/placement records: the [`REGIONS_MAGIC`]
/// marker, a `u32` count, then per region a length-prefixed UTF-8
/// name, `u64` base, `u64` bytes, a policy tag byte (0 = `Base4K`,
/// 1 = `Huge2M`, 2 = `Auto`) and the `u64` policy argument (the
/// `Auto` threshold; 0 otherwise).
fn encode_regions(regions: &[MemRegion], out: &mut Vec<u8>) {
    out.extend_from_slice(&REGIONS_MAGIC);
    out.extend_from_slice(&(regions.len() as u32).to_le_bytes());
    for r in regions {
        out.extend_from_slice(&(r.name.len() as u32).to_le_bytes());
        out.extend_from_slice(r.name.as_bytes());
        out.extend_from_slice(&r.base.to_le_bytes());
        out.extend_from_slice(&r.bytes.to_le_bytes());
        let (tag, arg) = match r.policy {
            PagePolicy::Base4K => (0u8, 0u64),
            PagePolicy::Huge2M => (1, 0),
            PagePolicy::Auto { threshold_bytes } => (2, threshold_bytes),
        };
        out.push(tag);
        out.extend_from_slice(&arg.to_le_bytes());
    }
}

/// Parses the region records written by [`encode_regions`], returning
/// them together with the remaining (memory-image) bytes. A payload
/// without the [`REGIONS_MAGIC`] marker predates region records (or
/// was written by an external recorder): it decodes as no regions,
/// with every byte belonging to the memory image.
fn decode_regions(bytes: &[u8]) -> Result<(Vec<MemRegion>, &[u8]), ArtifactError> {
    let Some(body) = bytes.strip_prefix(&REGIONS_MAGIC[..]) else {
        return Ok((Vec::new(), bytes));
    };
    let bytes = body;
    fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], ArtifactError> {
        if n > bytes.len() - *pos {
            return Err(ArtifactError::MalformedRegions("truncated region records"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    }
    let mut pos = 0usize;
    let count = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    // The count is untrusted until checked against the bytes that
    // follow — cap the pre-allocation by the smallest possible record.
    let mut regions = Vec::with_capacity(count.min(bytes.len() / 29));
    for _ in 0..count {
        let name_len =
            u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let name = std::str::from_utf8(take(bytes, &mut pos, name_len)?)
            .map_err(|_| ArtifactError::MalformedRegions("region name is not UTF-8"))?
            .to_string();
        let base = u64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().expect("8 bytes"));
        let tag = take(bytes, &mut pos, 1)?[0];
        let arg = u64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().expect("8 bytes"));
        let policy = match tag {
            0 => PagePolicy::Base4K,
            1 => PagePolicy::Huge2M,
            2 => PagePolicy::Auto {
                threshold_bytes: arg,
            },
            _ => return Err(ArtifactError::MalformedRegions("unknown page-policy tag")),
        };
        regions.push(MemRegion {
            name,
            base,
            bytes: len,
            policy,
        });
    }
    Ok((regions, &bytes[pos..]))
}

/// Why an artifact could not be saved or loaded.
#[derive(Debug)]
pub enum ArtifactError {
    /// The `.imptrace` container itself failed (I/O, corruption, ...).
    Trace(TraceError),
    /// The container's payload ends before the 8-byte result field.
    ShortPayload(usize),
    /// The region/placement records inside the payload are malformed.
    MalformedRegions(&'static str),
    /// The memory image inside the payload is malformed.
    Memory(SnapshotError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Trace(e) => write!(f, "{e}"),
            ArtifactError::ShortPayload(n) => write!(
                f,
                "artifact payload is {n} bytes; needs at least the 8-byte result"
            ),
            ArtifactError::MalformedRegions(what) => {
                write!(f, "artifact region records are malformed: {what}")
            }
            ArtifactError::Memory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Trace(e) => Some(e),
            ArtifactError::Memory(e) => Some(e),
            ArtifactError::ShortPayload(_) | ArtifactError::MalformedRegions(_) => None,
        }
    }
}

impl From<TraceError> for ArtifactError {
    fn from(e: TraceError) -> Self {
        ArtifactError::Trace(e)
    }
}

impl From<SnapshotError> for ArtifactError {
    fn from(e: SnapshotError) -> Self {
        ArtifactError::Memory(e)
    }
}

/// Why a workload generator could not produce a [`Built`].
///
/// The stock generators are infallible; replaying a recorded trace is
/// not (the file may be missing, corrupt, or recorded for a different
/// core count).
#[derive(Debug)]
pub enum WorkloadError {
    /// The `.imptrace` artifact could not be loaded.
    Artifact(ArtifactError),
    /// The trace was recorded for a different core count than requested.
    CoreCountMismatch {
        /// Cores the trace was recorded with.
        trace: usize,
        /// Cores the caller asked for.
        requested: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Artifact(e) => write!(f, "{e}"),
            WorkloadError::CoreCountMismatch { trace, requested } => write!(
                f,
                "trace was recorded for {trace} cores but {requested} were requested"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Artifact(e) => Some(e),
            WorkloadError::CoreCountMismatch { .. } => None,
        }
    }
}

impl From<ArtifactError> for WorkloadError {
    fn from(e: ArtifactError) -> Self {
        WorkloadError::Artifact(e)
    }
}

/// The `trace:<path>` pseudo-workload: replays a recorded `.imptrace`
/// artifact instead of running a generator.
///
/// Scale, seed and software-prefetch parameters are properties of the
/// recording and are ignored at replay; the requested core count must
/// match the recording.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    path: PathBuf,
}

impl TraceWorkload {
    /// A replayer for the artifact at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TraceWorkload { path: path.into() }
    }

    /// The file this workload replays.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        "trace"
    }

    /// # Panics
    ///
    /// Panics when the artifact cannot be loaded or does not match the
    /// requested core count; use [`Workload::try_build`] for the
    /// fallible form.
    fn build(&self, params: &WorkloadParams) -> Built {
        self.try_build(params).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_build(&self, params: &WorkloadParams) -> Result<Built, WorkloadError> {
        let artifact = BuiltArtifact::load(&self.path)?;
        if artifact.program().cores() != params.cores {
            return Err(WorkloadError::CoreCountMismatch {
                trace: artifact.program().cores(),
                requested: params.cores,
            });
        }
        Ok(artifact.to_built())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, Scale};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "imp-artifact-{tag}-{}.imptrace",
            std::process::id()
        ))
    }

    #[test]
    fn artifact_roundtrips_program_memory_and_result() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let reference = by_name("spmv").unwrap().build(&params);
        let artifact = BuiltArtifact::from(built);

        let path = temp_path("roundtrip");
        artifact.save(&path).unwrap();
        let loaded = BuiltArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.result(), reference.result);
        assert_eq!(loaded.program().cores(), 4);
        assert_eq!(loaded.mem().mapped_pages(), reference.mem.mapped_pages());
        assert_eq!(
            loaded.regions(),
            &reference.regions[..],
            "placement records replay"
        );
        assert!(
            loaded.regions().iter().any(|r| r.name == "x"),
            "spmv declares its target vector"
        );
        for c in 0..4 {
            assert_eq!(
                loaded.program().ops(c),
                reference.program.ops(c),
                "core {c}"
            );
        }
    }

    #[test]
    fn trace_workload_replays_through_the_registry() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let artifact = BuiltArtifact::from(by_name("sgd").unwrap().build(&params));
        let path = temp_path("registry");
        artifact.save(&path).unwrap();

        let name = format!("trace:{}", path.display());
        let replayed = by_name(&name).expect("trace: names resolve");
        let built = replayed.try_build(&params).unwrap();
        assert_eq!(built.result, artifact.result());
        assert_eq!(
            built.program.total_instructions(),
            artifact.program().total_instructions()
        );

        // Wrong core count is a typed error, not a deadlocked sim.
        let wrong = WorkloadParams::new(16, Scale::Tiny);
        assert!(matches!(
            replayed.try_build(&wrong),
            Err(WorkloadError::CoreCountMismatch {
                trace: 4,
                requested: 16
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn program_only_traces_replay_with_empty_memory() {
        // External recorders (and `Program::save`) write the container
        // with no payload; that must still replay.
        let params = WorkloadParams::new(2, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let path = temp_path("program-only");
        built.program.save(&path).unwrap();

        let loaded = BuiltArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.result().is_nan(), "no result was recorded");
        assert_eq!(loaded.mem().mapped_pages(), 0, "no memory was recorded");
        assert_eq!(loaded.program().ops(0), built.program.ops(0));

        // And through the registry name, with matching cores.
        let path2 = temp_path("program-only-2");
        built.program.save(&path2).unwrap();
        let replayed = by_name(&format!("trace:{}", path2.display())).unwrap();
        let again = replayed.try_build(&params).unwrap();
        std::fs::remove_file(&path2).ok();
        assert_eq!(
            again.program.total_instructions(),
            built.program.total_instructions()
        );
    }

    #[test]
    fn region_records_roundtrip_and_reject_corruption() {
        let regions = vec![
            MemRegion {
                name: "idx".into(),
                base: 0x1_0000,
                bytes: 4096,
                policy: PagePolicy::Base4K,
            },
            MemRegion {
                name: "target".into(),
                base: 0x9_0000,
                bytes: 1 << 22,
                policy: PagePolicy::Huge2M,
            },
            MemRegion {
                name: "auto".into(),
                base: 0x100_0000,
                bytes: 123,
                policy: PagePolicy::Auto {
                    threshold_bytes: 1 << 20,
                },
            },
        ];
        let mut bytes = Vec::new();
        encode_regions(&regions, &mut bytes);
        bytes.extend_from_slice(b"tail");
        let (back, rest) = decode_regions(&bytes).unwrap();
        assert_eq!(back, regions);
        assert_eq!(rest, b"tail");

        // A payload without the marker is the pre-region layout: no
        // records, every byte left for the memory image — old
        // artifacts keep loading.
        let legacy = FunctionalMemory::new().snapshot();
        let (none, rest) = decode_regions(&legacy).unwrap();
        assert!(none.is_empty());
        assert_eq!(rest, &legacy[..]);

        // Truncation and a bad policy tag are typed errors.
        assert!(matches!(
            decode_regions(&bytes[..10]),
            Err(ArtifactError::MalformedRegions(_))
        ));
        let mut bad_tag = Vec::new();
        encode_regions(&regions[..1], &mut bad_tag);
        let tag_at = bad_tag.len() - 9;
        bad_tag[tag_at] = 99;
        assert!(matches!(
            decode_regions(&bad_tag),
            Err(ArtifactError::MalformedRegions("unknown page-policy tag"))
        ));
    }

    #[test]
    fn pre_region_payloads_still_load() {
        // Reconstruct the PR 2-4 payload layout by hand: result bytes
        // followed directly by the memory image, no region section.
        let params = WorkloadParams::new(2, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let mut payload = built.result.to_le_bytes().to_vec();
        payload.extend_from_slice(&built.mem.snapshot());
        let path = temp_path("legacy");
        TraceFile::with_payload(built.program.clone(), payload)
            .save(&path)
            .unwrap();

        let loaded = BuiltArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.result(), built.result);
        assert!(loaded.regions().is_empty(), "old artifacts carry none");
        assert_eq!(loaded.mem().mapped_pages(), built.mem.mapped_pages());
    }

    #[test]
    fn missing_trace_file_is_a_typed_error() {
        let replayed = by_name("trace:/no/such/file.imptrace").unwrap();
        let params = WorkloadParams::new(4, Scale::Tiny);
        assert!(matches!(
            replayed.try_build(&params),
            Err(WorkloadError::Artifact(ArtifactError::Trace(
                TraceError::Io(_)
            )))
        ));
    }
}
