//! Property tests for the paper's core mechanism: the IPD must recover a
//! planted (shift, base) pattern from raw index/miss pairs, and the full
//! IMP must prefetch real future targets — for every supported shift and
//! arbitrary index contents.

// The deprecated `*_collect` shims must keep working; exercising them
// here keeps them covered.
#![allow(deprecated)]

use imp_common::{Addr, ImpConfig, Pc};
use imp_prefetch::{shift_apply, Access, Imp, Ipd, L1Prefetcher, MapValueSource, PrefetchKind};
use proptest::prelude::*;

proptest! {
    /// IPD solves Eq. (2) for arbitrary index values and bases, for all
    /// four supported shifts.
    #[test]
    fn ipd_recovers_planted_pattern(
        base in (0u64..1 << 40).prop_map(|b| b & !7),
        idx1 in 0u64..1 << 20,
        delta in 1u64..1 << 10,
        shift_sel in 0usize..4,
    ) {
        let shifts = [2i8, 3, 4, -3];
        let shift = shifts[shift_sel];
        // For the right-shift (bit-vector) pattern, keep indices byte-aligned
        // so the planted pair is exactly recoverable.
        let (i1, i2) = if shift == -3 {
            (idx1 * 8, (idx1 + delta) * 8)
        } else {
            (idx1, idx1 + delta)
        };
        let mut ipd = Ipd::new(4, shifts.to_vec(), 4);
        prop_assume!(ipd.try_allocate(0, i1));
        ipd.on_miss(Addr::new(base.wrapping_add(shift_apply(i1, shift))));
        ipd.on_index_access(0, i2);
        let det = ipd.on_miss(Addr::new(base.wrapping_add(shift_apply(i2, shift))));
        let det = det.expect("pattern must be detected");
        // The detected parameters must predict the observed addresses
        // (an equivalent (shift, base) pair is acceptable: e.g. even
        // indices make shift 2 and 3 indistinguishable).
        prop_assert_eq!(
            shift_apply(i1, det.shift).wrapping_add(det.base),
            base.wrapping_add(shift_apply(i1, shift))
        );
        prop_assert_eq!(
            shift_apply(i2, det.shift).wrapping_add(det.base),
            base.wrapping_add(shift_apply(i2, shift))
        );
    }

    /// End to end: whatever the (scattered) index contents, every indirect
    /// prefetch IMP emits targets a genuine future A[B[j]] address.
    #[test]
    fn imp_prefetches_only_real_targets(seed in any::<u64>()) {
        let b_base = 0x1_0000u64;
        let a_base = 0x100_0000u64;
        let n = 96u64;
        let b_of = |i: u64| (i.wrapping_mul(seed | 1) >> 5) % 10_000;
        let mut src = MapValueSource::new();
        for i in 0..n {
            src.insert(Addr::new(b_base + 4 * i), 4, b_of(i));
        }
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let targets: std::collections::BTreeSet<u64> =
            (0..n).map(|i| a_base + 8 * b_of(i)).collect();
        for i in 0..n {
            let reqs = imp.on_access_collect(
                Access::load_hit(Pc::new(1), Addr::new(b_base + 4 * i), 4),
                &mut src,
            );
            for r in &reqs {
                if let PrefetchKind::Indirect { .. } = r.kind {
                    prop_assert!(
                        targets.contains(&r.addr.raw()),
                        "bogus target {:#x}",
                        r.addr.raw()
                    );
                }
            }
            imp.on_access_collect(
                Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8),
                &mut src,
            );
        }
    }

    /// `depth=1` (the default) is the paper's single-level detector,
    /// bit for bit: a chained `Imp` pinned to depth 1 must emit exactly
    /// the request stream the default constructor does — on arbitrary
    /// access interleavings, with every emitted prefetch fed back
    /// through the fill hook (where the chain gates live).
    #[test]
    fn depth_one_is_bit_identical_to_the_default_detector(
        seed in any::<u64>(),
        accesses in proptest::collection::vec((0u64..256, 0u64..2), 1..120),
    ) {
        let b_base = 0x1_0000u64;
        let a_base = 0x100_0000u64;
        let b_of = |i: u64| (i.wrapping_mul(seed | 1) >> 5) % 10_000;
        let mut src = MapValueSource::new();
        for i in 0..256 {
            src.insert(Addr::new(b_base + 4 * i), 4, b_of(i));
        }
        // Give fills real values too, so chained detection has
        // something to chase if it (wrongly) engages at depth 1.
        for i in 0..10_000 {
            src.insert(Addr::new(a_base + 8 * i), 8, i % 512);
        }
        let mut plain = Imp::new(ImpConfig::paper_default(), false, seed);
        let mut pinned =
            Imp::new(ImpConfig::paper_default(), false, seed).with_depth(1);
        for &(i, miss) in &accesses {
            let miss = miss == 1;
            let idx = Access::load_hit(Pc::new(1), Addr::new(b_base + 4 * i), 4);
            let tgt = if miss {
                Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8)
            } else {
                Access::load_hit(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8)
            };
            for acc in [idx, tgt] {
                let a = plain.on_access_collect(acc, &mut src);
                let b = pinned.on_access_collect(acc, &mut src);
                prop_assert_eq!(&a, &b);
                // Propagate every fill through both detectors — the
                // chain-extension logic only runs here.
                let mut queue = a;
                while let Some(r) = queue.pop() {
                    let fa = plain.on_prefetch_fill_collect(r, &mut src);
                    let fb = pinned.on_prefetch_fill_collect(r, &mut src);
                    prop_assert_eq!(&fa, &fb);
                    queue.extend(fa);
                }
            }
        }
    }

    /// shift_apply is consistent with the coefficient semantics.
    #[test]
    fn shift_apply_matches_multiplication(v in 0u64..1 << 40) {
        prop_assert_eq!(shift_apply(v, 2), v.wrapping_mul(4));
        prop_assert_eq!(shift_apply(v, 3), v.wrapping_mul(8));
        prop_assert_eq!(shift_apply(v, 4), v.wrapping_mul(16));
        prop_assert_eq!(shift_apply(v, -3), v / 8);
    }
}
