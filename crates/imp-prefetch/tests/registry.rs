//! Plugin-registry behavior: name resolution, duplicate protection,
//! parameter validation, and the hybrid combinator's component checks.

use imp_common::config::PrefetcherSpec;
use imp_common::ImpConfig;
use imp_prefetch::registry::{self, BuildCtx, RegistryError};
use imp_prefetch::{NullPrefetcher, Registry};
use std::sync::Arc;

fn ctx(imp: &ImpConfig) -> BuildCtx<'_> {
    BuildCtx {
        core: 0,
        imp,
        partial: false,
    }
}

/// `unwrap_err` needs `T: Debug`, which trait objects lack.
fn build_err(r: &Registry, spec: &str, imp: &ImpConfig) -> RegistryError {
    let spec: PrefetcherSpec = spec.parse().expect("parsable spec");
    match r.build(&spec, &ctx(imp)) {
        Err(e) => e,
        Ok(_) => panic!("{spec} unexpectedly built"),
    }
}

#[test]
fn builtins_are_registered() {
    let r = Registry::with_builtins();
    for name in ["none", "stream", "imp", "ghb", "hybrid"] {
        assert!(r.contains(name), "{name} missing");
        assert!(registry::is_registered(name), "{name} missing from global");
    }
    assert_eq!(r.names(), vec!["ghb", "hybrid", "imp", "none", "stream"]);
}

#[test]
fn unknown_name_reports_known_factories() {
    let imp = ImpConfig::paper_default();
    let r = Registry::with_builtins();
    match build_err(&r, "markov", &imp) {
        RegistryError::UnknownPrefetcher { name, known } => {
            assert_eq!(name, "markov");
            assert!(known.contains(&"imp".to_string()));
        }
        other => panic!("wrong error: {other}"),
    }
    // The message names the candidates so typos are self-diagnosing.
    let msg = build_err(&r, "markov", &imp).to_string();
    assert!(msg.contains("markov") && msg.contains("stream"), "{msg}");
}

#[test]
fn duplicate_registration_is_rejected() {
    let mut r = Registry::with_builtins();
    let err = r
        .register(
            "stream",
            Arc::new(|_: &PrefetcherSpec, _: &BuildCtx<'_>| {
                Ok(Box::new(NullPrefetcher::new()) as Box<_>)
            }),
        )
        .unwrap_err();
    assert_eq!(err, RegistryError::DuplicateName("stream".to_string()));

    // Same protection on the process-wide registry.
    registry::register_fn("registry-test-dup", |_, _| {
        Ok(Box::new(NullPrefetcher::new()))
    })
    .expect("first registration succeeds");
    let err = registry::register_fn("registry-test-dup", |_, _| {
        Ok(Box::new(NullPrefetcher::new()))
    })
    .unwrap_err();
    assert_eq!(
        err,
        RegistryError::DuplicateName("registry-test-dup".to_string())
    );
}

#[test]
fn stock_factories_validate_parameters() {
    let imp = ImpConfig::paper_default();
    let r = Registry::with_builtins();
    // Unknown key.
    match build_err(&r, "stream:degre=4", &imp) {
        RegistryError::InvalidParam {
            prefetcher, param, ..
        } => {
            assert_eq!((prefetcher.as_str(), param.as_str()), ("stream", "degre"));
        }
        other => panic!("wrong error: {other}"),
    }
    // Wrong type.
    assert!(matches!(
        build_err(&r, "imp:distance=lots", &imp),
        RegistryError::InvalidParam { .. }
    ));
    // Valid overrides build.
    let spec: PrefetcherSpec = "imp:distance=8,pt_entries=32".parse().unwrap();
    assert!(r.build(&spec, &ctx(&imp)).is_ok());
    let spec: PrefetcherSpec = "ghb:entries=128,degree=2".parse().unwrap();
    assert!(r.build(&spec, &ctx(&imp)).is_ok());
}

#[test]
fn hybrid_checks_its_components() {
    let imp = ImpConfig::paper_default();
    let r = Registry::with_builtins();
    assert!(r.build(&PrefetcherSpec::new("hybrid"), &ctx(&imp)).is_ok());
    let spec: PrefetcherSpec = "hybrid:components=stream+ghb+imp".parse().unwrap();
    assert!(r.build(&spec, &ctx(&imp)).is_ok());
    for bad in [
        "hybrid:components=stream+markov",
        "hybrid:components=",
        "hybrid:components=3",
    ] {
        let spec: PrefetcherSpec = bad.parse().unwrap();
        assert!(
            matches!(
                r.build(&spec, &ctx(&imp)),
                Err(RegistryError::InvalidParam { .. })
            ),
            "{bad} should be rejected"
        );
    }
}

#[test]
fn custom_factory_round_trips_through_a_local_registry() {
    let imp = ImpConfig::paper_default();
    let mut r = Registry::empty();
    assert!(!r.contains("stream"), "empty registry resolves nothing");
    r.register(
        "custom",
        Arc::new(|spec: &PrefetcherSpec, c: &BuildCtx<'_>| {
            assert_eq!(spec.get("knob").and_then(|v| v.as_u32()), Some(3));
            assert_eq!(c.core, 0);
            Ok(Box::new(NullPrefetcher::new()) as Box<_>)
        }),
    )
    .unwrap();
    let spec: PrefetcherSpec = "custom:knob=3".parse().unwrap();
    assert!(r.build(&spec, &ctx(&imp)).is_ok());
}
