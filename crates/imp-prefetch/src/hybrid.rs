//! A composite prefetcher that runs several component prefetchers side
//! by side and arbitrates their requests per PC.
//!
//! Every component observes the full access stream (each must keep
//! learning even while another owns a PC), but only one component's
//! requests are forwarded for a given PC:
//!
//! * a PC is *latched* to the first component that emits an indirect
//!   prefetch for it — indirect patterns are precise, PC-associated
//!   knowledge, so the detecting component wins the PC outright;
//! * an unlatched PC forwards the requests of the first component that
//!   emitted anything for this access (earlier components take priority).
//!
//! This mirrors the arbitration of hybrid-prefetcher managers (e.g.
//! Puppeteer) in the simplest deterministic form: ownership never
//! flip-flops, so duplicate prefetches from overlapping components are
//! structurally impossible.
//!
//! Prefetch fills follow the same attribution: a fill whose PC is
//! latched is delivered only to the owning component, so the chained
//! requests it triggers carry the owner's attribution in the
//! timeliness ledger; fills for unlatched PCs fan out to every
//! component (the chain continues wherever the original request came
//! from).

use crate::access::{
    Access, L1Prefetcher, PrefetchCtx, PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use crate::feedback::{Control, Feedback};
use imp_common::{FastMap, LineAddr, Pc, SectorMask};

/// The per-PC arbitrating combinator. See the module docs.
pub struct Hybrid {
    components: Vec<Box<dyn L1Prefetcher>>,
    owner: FastMap<Pc, usize>,
    /// One reusable request buffer per component (cleared per access).
    scratch: Vec<Vec<PrefetchRequest>>,
    forwarded_stream: u64,
    forwarded_indirect: u64,
    stats: PrefetcherStats,
}

impl Hybrid {
    /// Combines `components` (at least one; earlier entries win ties).
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<Box<dyn L1Prefetcher>>) -> Self {
        assert!(
            !components.is_empty(),
            "Hybrid needs at least one component"
        );
        let scratch = components.iter().map(|_| Vec::new()).collect();
        Hybrid {
            components,
            owner: FastMap::default(),
            scratch,
            forwarded_stream: 0,
            forwarded_indirect: 0,
            stats: PrefetcherStats::default(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always false: construction requires at least one component.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Which component currently owns `pc`, if any has latched it.
    pub fn owner_of(&self, pc: Pc) -> Option<usize> {
        self.owner.get(&pc).copied()
    }

    /// Hops at or past this are "deep": the most speculative end of a
    /// chained-indirection walk.
    const DEEP_HOP: u8 = 3;

    fn forward(&mut self, reqs: &[PrefetchRequest], out: &mut Vec<PrefetchRequest>) {
        for r in reqs {
            match r.kind {
                PrefetchKind::Sequential => self.forwarded_stream += 1,
                PrefetchKind::Indirect { .. } => self.forwarded_indirect += 1,
                PrefetchKind::TranslationOnly { .. } => {}
            }
        }
        // Shallow hops first: deep chain-ahead requests are the most
        // speculative, so they yield downstream degree budget and MSHR
        // slots to hops 0-2. The partition is stable and a no-op when
        // no deep hops are present (always the case at depth 1), which
        // preserves the historical forwarding order exactly.
        if reqs.iter().any(|r| r.kind.hop() >= Self::DEEP_HOP) {
            out.extend(reqs.iter().filter(|r| r.kind.hop() < Self::DEEP_HOP));
            out.extend(reqs.iter().filter(|r| r.kind.hop() >= Self::DEEP_HOP));
        } else {
            out.extend_from_slice(reqs);
        }
    }

    /// Rebuilds the merged statistics snapshot: detection counters sum
    /// over components; emission counters reflect what was forwarded.
    ///
    /// Runs once per observed access. The eager rebuild keeps `stats()`
    /// exact at any instant (the `L1Prefetcher` contract returns a plain
    /// reference, so there is nowhere to compute lazily without interior
    /// mutability); the cost is a handful of u64 adds per component,
    /// negligible next to the component models' own per-access work.
    fn refresh_stats(&mut self) {
        let mut merged = PrefetcherStats::default();
        for c in &self.components {
            let s = c.stats();
            merged.patterns_detected += s.patterns_detected;
            merged.detect_failures += s.detect_failures;
            merged.ways_detected += s.ways_detected;
            merged.levels_detected += s.levels_detected;
            merged.partial_prefetches += s.partial_prefetches;
            merged.value_unavailable += s.value_unavailable;
            merged.deferred_drops += s.deferred_drops;
            merged.deferred_retries += s.deferred_retries;
            merged.mshr_drops += s.mshr_drops;
            merged.translation_ahead += s.translation_ahead;
        }
        merged.stream_prefetches = self.forwarded_stream;
        merged.indirect_prefetches = self.forwarded_indirect;
        self.stats = merged;
    }
}

impl L1Prefetcher for Hybrid {
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        for (c, buf) in self.components.iter_mut().zip(&mut self.scratch) {
            buf.clear();
            let mut sub = PrefetchCtx::new(ctx.pc, ctx.class, &mut *ctx.values, buf, ctx.probe);
            c.on_access_ctx(access, &mut sub);
        }
        let per = &self.scratch;
        let chosen = match self.owner.get(&access.pc) {
            Some(&i) => i,
            None => {
                let indirect = per.iter().position(|rs| {
                    rs.iter()
                        .any(|r| matches!(r.kind, PrefetchKind::Indirect { .. }))
                });
                if let Some(i) = indirect {
                    self.owner.insert(access.pc, i);
                    i
                } else {
                    per.iter().position(|rs| !rs.is_empty()).unwrap_or(0)
                }
            }
        };
        let reqs = std::mem::take(&mut self.scratch[chosen]);
        self.forward(&reqs, ctx.out);
        self.scratch[chosen] = reqs;
        self.refresh_stats();
    }

    fn on_prefetch_fill_ctx(&mut self, request: PrefetchRequest, ctx: &mut PrefetchCtx<'_>) {
        // Fills for a latched PC go only to the owning component: the
        // arbiter forwarded that component's requests, so the chained
        // requests a fill triggers must carry the same attribution —
        // fanning the fill out would let a non-owning component emit
        // under a PC it lost, and the timeliness ledger (keyed by PC at
        // issue) would charge the owner for requests it never made.
        // Fills for unlatched PCs keep the historical fan-out: the chain
        // continues in whichever component issued the original request,
        // and the MSHR merge path absorbs the rare duplicates.
        let mut chained = std::mem::take(&mut self.scratch[0]);
        chained.clear();
        match self.owner.get(&request.pc).copied() {
            Some(i) => {
                let mut sub =
                    PrefetchCtx::new(ctx.pc, ctx.class, &mut *ctx.values, &mut chained, ctx.probe);
                self.components[i].on_prefetch_fill_ctx(request, &mut sub);
            }
            None => {
                for c in &mut self.components {
                    let mut sub = PrefetchCtx::new(
                        ctx.pc,
                        ctx.class,
                        &mut *ctx.values,
                        &mut chained,
                        ctx.probe,
                    );
                    c.on_prefetch_fill_ctx(request, &mut sub);
                }
            }
        }
        self.forward(&chained, ctx.out);
        self.scratch[0] = chained;
        self.refresh_stats();
    }

    fn on_feedback(&mut self, feedback: &Feedback) -> Control {
        let mut merged = Control::none();
        for c in &mut self.components {
            merged = merged.merge(c.on_feedback(feedback));
        }
        merged
    }

    fn on_eviction(&mut self, line: LineAddr) {
        for c in &mut self.components {
            c.on_eviction(line);
        }
    }

    fn on_demand_touch(&mut self, line: LineAddr, sectors: SectorMask) {
        for c in &mut self.components {
            c.on_demand_touch(line, sectors);
        }
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shim surface must keep working; exercising it here
    // keeps it covered.
    #![allow(deprecated)]

    use super::*;
    use crate::access::{MapValueSource, NullPrefetcher};
    use crate::imp::Imp;
    use crate::stream::StreamPrefetcher;
    use imp_common::{Addr, ImpConfig};

    fn stream_imp_hybrid() -> Hybrid {
        Hybrid::new(vec![
            Box::new(StreamPrefetcher::new(16, 2, 4)),
            Box::new(Imp::new(ImpConfig::paper_default(), false, 1)),
        ])
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_hybrid_rejected() {
        let _ = Hybrid::new(Vec::new());
    }

    #[test]
    fn indirect_detection_latches_pc_ownership() {
        let mut h = stream_imp_hybrid();
        let b_base = 0x1_0000u64;
        let a_base = 0x100_0000u64;
        let b_of = |i: u64| (i.wrapping_mul(2654435761) >> 6) % 10_000;
        let mut src = MapValueSource::new();
        for i in 0..96u64 {
            src.insert(Addr::new(b_base + 4 * i), 4, b_of(i));
        }
        for i in 0..96u64 {
            h.on_access_collect(
                Access::load_hit(Pc::new(1), Addr::new(b_base + 4 * i), 4),
                &mut src,
            );
            h.on_access_collect(
                Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8),
                &mut src,
            );
        }
        // The IMP component (index 1) detected the indirect pattern and
        // must own the index PC; its prefetches were forwarded.
        assert_eq!(h.owner_of(Pc::new(1)), Some(1));
        assert!(h.stats().patterns_detected >= 1);
        assert!(h.stats().indirect_prefetches > 0);
    }

    #[test]
    fn earlier_component_wins_plain_streams() {
        // Two stream prefetchers: only the first one's requests flow.
        let mut h = Hybrid::new(vec![
            Box::new(StreamPrefetcher::new(16, 2, 4)),
            Box::new(StreamPrefetcher::new(16, 2, 4)),
        ]);
        let mut src = MapValueSource::new();
        let mut total = 0usize;
        for i in 0..64u64 {
            let reqs = h.on_access_collect(
                Access::load_miss(Pc::new(7), Addr::new(64 * i), 8),
                &mut src,
            );
            total += reqs.len();
        }
        assert!(total > 0, "stream requests forwarded");
        // Forwarded exactly one component's worth: the merged stream
        // counter equals the forwarded count, not double it.
        assert_eq!(h.stats().stream_prefetches, total as u64);
    }

    /// A probe component: optionally claims PCs by emitting an indirect
    /// request on access, and marks every fill it sees by chaining a
    /// request at a component-unique address.
    struct Tagger {
        id: u64,
        claim: bool,
        stats: PrefetcherStats,
    }

    impl Tagger {
        fn new(id: u64, claim: bool) -> Self {
            Tagger {
                id,
                claim,
                stats: PrefetcherStats::default(),
            }
        }

        fn chain_addr(id: u64) -> Addr {
            Addr::new(0xDEAD_0000 + 0x100 * id)
        }
    }

    impl L1Prefetcher for Tagger {
        fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
            if self.claim {
                ctx.out.push(PrefetchRequest {
                    pc: access.pc,
                    addr: Addr::new(0x8000 + 0x40 * self.id),
                    sectors: SectorMask::FULL_L1,
                    exclusive: false,
                    kind: PrefetchKind::Indirect { pt: 0, hop: 1 },
                });
            }
        }

        fn on_prefetch_fill_ctx(&mut self, request: PrefetchRequest, ctx: &mut PrefetchCtx<'_>) {
            ctx.out.push(PrefetchRequest {
                pc: request.pc,
                addr: Self::chain_addr(self.id),
                sectors: SectorMask::FULL_L1,
                exclusive: false,
                kind: PrefetchKind::Sequential,
            });
        }

        fn stats(&self) -> &PrefetcherStats {
            &self.stats
        }
    }

    #[test]
    fn fills_are_attributed_to_the_owning_component() {
        // Component 1 claims PC 5 via an indirect emission; component 0
        // never claims. A fill under the latched PC must reach only the
        // owner — the arbiter and the timeliness ledger then agree on
        // who issued the chained requests. An unlatched PC keeps the
        // fan-out-to-all behaviour.
        let mut h = Hybrid::new(vec![
            Box::new(Tagger::new(0, false)),
            Box::new(Tagger::new(1, true)),
        ]);
        let mut src = MapValueSource::new();
        let owned = Pc::new(5);
        let reqs = h.on_access_collect(Access::load_miss(owned, Addr::new(0x100), 8), &mut src);
        assert_eq!(h.owner_of(owned), Some(1));
        assert_eq!(reqs.len(), 1, "only the claiming component forwards");

        let fill = |pc: Pc| PrefetchRequest {
            pc,
            addr: Addr::new(0x9000),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Sequential,
        };
        let chained = h.on_prefetch_fill_collect(fill(owned), &mut src);
        let addrs: Vec<Addr> = chained.iter().map(|r| r.addr).collect();
        assert_eq!(
            addrs,
            vec![Tagger::chain_addr(1)],
            "latched PC: the owning component alone continues the chain"
        );

        let chained = h.on_prefetch_fill_collect(fill(Pc::new(99)), &mut src);
        let addrs: Vec<Addr> = chained.iter().map(|r| r.addr).collect();
        assert_eq!(
            addrs,
            vec![Tagger::chain_addr(0), Tagger::chain_addr(1)],
            "unlatched PC: the historical fan-out, in component order"
        );
    }

    #[test]
    fn feedback_controls_merge_across_components() {
        struct Throttler {
            limit: u32,
            stats: PrefetcherStats,
        }
        impl L1Prefetcher for Throttler {
            fn on_access_ctx(&mut self, _access: Access, _ctx: &mut PrefetchCtx<'_>) {}
            fn on_feedback(&mut self, _feedback: &Feedback) -> Control {
                Control {
                    degree_limit: Some(self.limit),
                    masked_pcs: vec![Pc::new(self.limit)],
                    ..Control::none()
                }
            }
            fn stats(&self) -> &PrefetcherStats {
                &self.stats
            }
        }
        let mut h = Hybrid::new(vec![
            Box::new(Throttler {
                limit: 4,
                stats: PrefetcherStats::default(),
            }),
            Box::new(Throttler {
                limit: 2,
                stats: PrefetcherStats::default(),
            }),
        ]);
        let ctl = h.on_feedback(&Feedback::default());
        assert_eq!(ctl.degree_limit, Some(2), "tightest component wins");
        assert_eq!(ctl.masked_pcs, vec![Pc::new(2), Pc::new(4)]);
    }

    #[test]
    fn deep_hops_yield_to_shallow_hops_on_forward() {
        /// Emits one request per configured hop, in the given order.
        struct HopEmitter {
            hops: Vec<u8>,
            stats: PrefetcherStats,
        }
        impl L1Prefetcher for HopEmitter {
            fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
                for &h in &self.hops {
                    ctx.out.push(PrefetchRequest {
                        pc: access.pc,
                        addr: Addr::new(0x1000 + 0x40 * u64::from(h)),
                        sectors: SectorMask::FULL_L1,
                        exclusive: false,
                        kind: match h {
                            0 => PrefetchKind::Sequential,
                            h => PrefetchKind::Indirect { pt: 0, hop: h },
                        },
                    });
                }
            }
            fn stats(&self) -> &PrefetcherStats {
                &self.stats
            }
        }
        let mut h = Hybrid::new(vec![Box::new(HopEmitter {
            hops: vec![3, 0, 2, 4, 1],
            stats: PrefetcherStats::default(),
        })]);
        let mut src = MapValueSource::new();
        let reqs = h.on_access_collect(Access::load_miss(Pc::new(1), Addr::new(0x40), 8), &mut src);
        let order: Vec<u8> = reqs.iter().map(|r| r.kind.hop()).collect();
        assert_eq!(
            order,
            vec![0, 2, 1, 3, 4],
            "hops 0-2 keep their order up front; deep hops trail"
        );
    }

    #[test]
    fn null_components_are_harmless() {
        let mut h = Hybrid::new(vec![
            Box::new(NullPrefetcher::new()),
            Box::new(StreamPrefetcher::new(16, 2, 4)),
        ]);
        let mut src = MapValueSource::new();
        let mut total = 0;
        for i in 0..32u64 {
            total += h
                .on_access_collect(
                    Access::load_miss(Pc::new(3), Addr::new(64 * i), 8),
                    &mut src,
                )
                .len();
        }
        assert!(total > 0, "second component's streams still flow");
    }
}
