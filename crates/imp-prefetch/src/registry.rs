//! The prefetcher plugin registry: a string-keyed factory table that
//! turns a [`PrefetcherSpec`] into a boxed [`L1Prefetcher`].
//!
//! The simulator (`imp-sim`) builds every per-core prefetcher through the
//! process-wide registry, so downstream crates can attach prefetchers the
//! core never heard of — register a [`PrefetcherFactory`] (or a plain
//! closure via [`register_fn`]) and name it in
//! `SystemConfig::with_prefetcher`:
//!
//! ```
//! use imp_prefetch::registry::{self, BuildCtx};
//! use imp_prefetch::NullPrefetcher;
//!
//! // A (useless) custom prefetcher, registered from outside the core.
//! registry::register_fn("doc-noop", |_spec, _ctx| {
//!     Ok(Box::new(NullPrefetcher::new()))
//! })
//! .unwrap();
//! assert!(registry::is_registered("doc-noop"));
//!
//! // Builders receive the spec (with its parameters) and a per-core ctx.
//! let spec = "doc-noop".parse().unwrap();
//! let imp_cfg = imp_common::ImpConfig::paper_default();
//! let ctx = BuildCtx { core: 0, imp: &imp_cfg, partial: false };
//! assert!(registry::build(&spec, &ctx).is_ok());
//! ```
//!
//! The stock factories (`none`, `stream`, `imp`, `ghb`, `hybrid`) are
//! pre-registered; [`RegistryError::DuplicateName`] protects their names
//! and any name registered twice.

use crate::access::L1Prefetcher;
use crate::ghb::Ghb;
use crate::hybrid::Hybrid;
use crate::imp::Imp;
use crate::stream::StreamPrefetcher;
use imp_common::config::{ImpConfig, PrefetcherSpec};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Per-core context a factory builds against.
#[derive(Clone, Copy, Debug)]
pub struct BuildCtx<'a> {
    /// Which core this prefetcher instance attaches to (seeds and other
    /// per-core state derive from it deterministically).
    pub core: u32,
    /// The system's IMP parameter block (Table 2) — the defaults for any
    /// parameter the spec does not override.
    pub imp: &'a ImpConfig,
    /// Whether partial cacheline accessing is enabled (Section 4).
    pub partial: bool,
}

/// Errors surfaced by registry operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The spec names a factory nobody registered.
    UnknownPrefetcher {
        /// The unresolvable name.
        name: String,
        /// Everything currently registered, for the error message.
        known: Vec<String>,
    },
    /// A factory with this name already exists.
    DuplicateName(String),
    /// The factory rejected a parameter.
    InvalidParam {
        /// The factory that rejected it.
        prefetcher: String,
        /// The offending key (or pseudo-key).
        param: String,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPrefetcher { name, known } => write!(
                f,
                "unknown prefetcher {name:?}; registered: {}",
                known.join(", ")
            ),
            RegistryError::DuplicateName(name) => {
                write!(f, "prefetcher {name:?} is already registered")
            }
            RegistryError::InvalidParam {
                prefetcher,
                param,
                reason,
            } => {
                write!(
                    f,
                    "invalid parameter {param:?} for prefetcher {prefetcher:?}: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Builds prefetcher instances from a [`PrefetcherSpec`].
///
/// Factories must be `Send + Sync`: one registry serves every simulation
/// thread of a parameter sweep.
pub trait PrefetcherFactory: Send + Sync {
    /// Builds one per-core instance. Implementations should reject
    /// parameters they do not understand with
    /// [`RegistryError::InvalidParam`].
    fn build(
        &self,
        spec: &PrefetcherSpec,
        ctx: &BuildCtx<'_>,
    ) -> Result<Box<dyn L1Prefetcher>, RegistryError>;
}

impl<F> PrefetcherFactory for F
where
    F: Fn(&PrefetcherSpec, &BuildCtx<'_>) -> Result<Box<dyn L1Prefetcher>, RegistryError>
        + Send
        + Sync,
{
    fn build(
        &self,
        spec: &PrefetcherSpec,
        ctx: &BuildCtx<'_>,
    ) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
        self(spec, ctx)
    }
}

/// A string-keyed table of prefetcher factories.
pub struct Registry {
    factories: BTreeMap<String, Arc<dyn PrefetcherFactory>>,
}

impl Registry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Registry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry holding the stock factories: `none`, `stream`, `imp`,
    /// `ghb`, and the `hybrid` combinator.
    pub fn with_builtins() -> Self {
        let mut r = Registry::empty();
        r.register("none", Arc::new(build_none))
            .expect("fresh registry");
        r.register("stream", Arc::new(build_stream))
            .expect("fresh registry");
        r.register("imp", Arc::new(build_imp))
            .expect("fresh registry");
        r.register("ghb", Arc::new(build_ghb))
            .expect("fresh registry");
        r.register("hybrid", Arc::new(build_hybrid))
            .expect("fresh registry");
        r
    }

    /// Registers `factory` under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: Arc<dyn PrefetcherFactory>,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        if self.factories.contains_key(&name) {
            return Err(RegistryError::DuplicateName(name));
        }
        self.factories.insert(name, factory);
        Ok(())
    }

    /// Builds a prefetcher for `spec` at `ctx`.
    pub fn build(
        &self,
        spec: &PrefetcherSpec,
        ctx: &BuildCtx<'_>,
    ) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
        match self.factories.get(&spec.name) {
            Some(f) => f.build(spec, ctx),
            None => Err(RegistryError::UnknownPrefetcher {
                name: spec.name.clone(),
                known: self.names(),
            }),
        }
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_builtins()
    }
}

fn global() -> &'static RwLock<Registry> {
    static GLOBAL: OnceLock<RwLock<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Registry::with_builtins()))
}

/// Registers `factory` in the process-wide registry.
pub fn register(
    name: impl Into<String>,
    factory: Arc<dyn PrefetcherFactory>,
) -> Result<(), RegistryError> {
    global()
        .write()
        .expect("registry lock")
        .register(name, factory)
}

/// Registers a closure-backed factory in the process-wide registry.
pub fn register_fn<F>(name: impl Into<String>, f: F) -> Result<(), RegistryError>
where
    F: Fn(&PrefetcherSpec, &BuildCtx<'_>) -> Result<Box<dyn L1Prefetcher>, RegistryError>
        + Send
        + Sync
        + 'static,
{
    register(name, Arc::new(f))
}

/// Builds a prefetcher from the process-wide registry.
pub fn build(
    spec: &PrefetcherSpec,
    ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    global().read().expect("registry lock").build(spec, ctx)
}

/// Whether `name` resolves in the process-wide registry.
pub fn is_registered(name: &str) -> bool {
    global().read().expect("registry lock").contains(name)
}

/// All names in the process-wide registry, sorted.
pub fn registered_names() -> Vec<String> {
    global().read().expect("registry lock").names()
}

// ----------------------------------------------------------------------
// Stock factories
// ----------------------------------------------------------------------

fn reject_unknown_params(spec: &PrefetcherSpec, accepted: &[&str]) -> Result<(), RegistryError> {
    for key in spec.params.keys() {
        if !accepted.contains(&key.as_str()) {
            return Err(RegistryError::InvalidParam {
                prefetcher: spec.name.clone(),
                param: key.clone(),
                reason: format!("accepted parameters: {}", accepted.join(", ")),
            });
        }
    }
    Ok(())
}

fn param_usize(spec: &PrefetcherSpec, key: &str, default: usize) -> Result<usize, RegistryError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| RegistryError::InvalidParam {
            prefetcher: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a non-negative integer, got {v}"),
        }),
    }
}

fn param_u32(spec: &PrefetcherSpec, key: &str, default: u32) -> Result<u32, RegistryError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_u32().ok_or_else(|| RegistryError::InvalidParam {
            prefetcher: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a non-negative integer, got {v}"),
        }),
    }
}

fn build_none(
    spec: &PrefetcherSpec,
    _ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    reject_unknown_params(spec, &[])?;
    Ok(Box::new(crate::access::NullPrefetcher::new()))
}

fn build_stream(
    spec: &PrefetcherSpec,
    ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    reject_unknown_params(spec, &["entries", "threshold", "distance"])?;
    Ok(Box::new(StreamPrefetcher::new(
        param_usize(spec, "entries", ctx.imp.pt_entries)?,
        param_u32(spec, "threshold", ctx.imp.stream_threshold)?,
        param_u32(spec, "distance", ctx.imp.stream_distance)?,
    )))
}

fn build_imp(
    spec: &PrefetcherSpec,
    ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    reject_unknown_params(
        spec,
        &[
            "pt_entries",
            "ipd_entries",
            "distance",
            "max_ways",
            "max_levels",
            "seed",
            "depth",
        ],
    )?;
    let mut cfg = ctx.imp.clone();
    cfg.pt_entries = param_usize(spec, "pt_entries", cfg.pt_entries)?;
    cfg.ipd_entries = param_usize(spec, "ipd_entries", cfg.ipd_entries)?;
    cfg.max_prefetch_distance = param_u32(spec, "distance", cfg.max_prefetch_distance)?;
    cfg.max_ways = param_usize(spec, "max_ways", cfg.max_ways)?;
    cfg.max_levels = param_usize(spec, "max_levels", cfg.max_levels)?;
    let seed = match spec.get("seed") {
        None => 0x1_000 + u64::from(ctx.core),
        Some(v) => v.as_u64().ok_or_else(|| RegistryError::InvalidParam {
            prefetcher: spec.name.clone(),
            param: "seed".to_string(),
            reason: format!("expected a non-negative integer, got {v}"),
        })?,
    };
    // `imp:depth=N` bounds chained indirection: data prefetches chase up
    // to N + 1 hops, translation prefetching one hop further. The
    // default of 1 is the paper's single-level detector, bit-identical
    // to builds that predate the knob.
    let depth = param_u32(spec, "depth", 1)?;
    if depth == 0 || depth > 8 {
        return Err(RegistryError::InvalidParam {
            prefetcher: spec.name.clone(),
            param: "depth".to_string(),
            reason: format!("expected 1..=8, got {depth}"),
        });
    }
    Ok(Box::new(
        Imp::new(cfg, ctx.partial, seed).with_depth(depth as u8),
    ))
}

fn build_ghb(
    spec: &PrefetcherSpec,
    _ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    reject_unknown_params(spec, &["entries", "degree"])?;
    // Unset knobs take the `Ghb::paper_default()` values (512 entries,
    // degree 2), so overriding one never silently shifts the other.
    Ok(Box::new(Ghb::new(
        param_usize(spec, "entries", 512)?,
        param_usize(spec, "degree", 2)?,
    )))
}

/// `hybrid:components=stream+imp` — builds each named stock component
/// (names only; component parameters take their defaults) and arbitrates
/// between them per PC. Components are restricted to the stock factories
/// so building never re-enters the registry lock.
fn build_hybrid(
    spec: &PrefetcherSpec,
    ctx: &BuildCtx<'_>,
) -> Result<Box<dyn L1Prefetcher>, RegistryError> {
    reject_unknown_params(spec, &["components"])?;
    let list = match spec.get("components") {
        None => "stream+imp".to_string(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| RegistryError::InvalidParam {
                prefetcher: spec.name.clone(),
                param: "components".to_string(),
                reason: format!("expected a +-separated name list, got {v}"),
            })?
            .to_string(),
    };
    let mut components = Vec::new();
    for name in list.split('+').map(str::trim).filter(|n| !n.is_empty()) {
        let component = PrefetcherSpec::new(name);
        let built = match name {
            "none" => build_none(&component, ctx)?,
            "stream" => build_stream(&component, ctx)?,
            "imp" => build_imp(&component, ctx)?,
            "ghb" => build_ghb(&component, ctx)?,
            other => {
                return Err(RegistryError::InvalidParam {
                    prefetcher: spec.name.clone(),
                    param: "components".to_string(),
                    reason: format!(
                        "unknown component {other:?}; hybrids combine the stock \
                         prefetchers none, stream, imp, ghb"
                    ),
                })
            }
        };
        components.push(built);
    }
    if components.is_empty() {
        return Err(RegistryError::InvalidParam {
            prefetcher: spec.name.clone(),
            param: "components".to_string(),
            reason: "at least one component is required".to_string(),
        });
    }
    Ok(Box::new(Hybrid::new(components)))
}
