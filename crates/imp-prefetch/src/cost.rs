//! Hardware storage-cost model (Section 6.4).
//!
//! Reproduces the paper's arithmetic for the storage added by IMP and by
//! partial cacheline accessing: the Prefetch Table is under 2 Kbits, the
//! IPD 3.5 Kbits (total 5.5 Kbits ≈ 0.7 KB), the Granularity Predictor
//! 3.4 Kbits, and sector valid masks add 1.6% / 0.4% to L1 / L2.

use imp_common::{ImpConfig, MemConfig};

/// Bits of a virtual address (Section 6.4.1 assumes 48).
pub const ADDRESS_BITS: u64 = 48;

/// Storage breakdown, in bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageCost {
    /// Indirect-table additions to the Prefetch Table.
    pub pt_bits: u64,
    /// Indirect Pattern Detector.
    pub ipd_bits: u64,
    /// Granularity Predictor.
    pub gp_bits: u64,
    /// L1 sector valid-mask overhead.
    pub l1_mask_bits: u64,
    /// L2 sector valid-mask overhead.
    pub l2_mask_bits: u64,
}

impl StorageCost {
    /// IMP-proper storage (PT + IPD), in bits.
    pub fn imp_bits(&self) -> u64 {
        self.pt_bits + self.ipd_bits
    }

    /// IMP-proper storage in kilobits (paper: "5.5 Kbits").
    pub fn imp_kbits(&self) -> f64 {
        self.imp_bits() as f64 / 1024.0
    }

    /// IMP-proper storage in bytes (paper: "0.7 KB").
    pub fn imp_bytes(&self) -> u64 {
        self.imp_bits() / 8
    }

    /// GP storage in kilobits (paper: "3.4 Kbits").
    pub fn gp_kbits(&self) -> f64 {
        self.gp_bits as f64 / 1024.0
    }
}

/// Per-entry bit count of the PT's indirect half (Section 6.4.1): the
/// dominant fields are BaseAddr (48 b) and index (48 b); enable, shift,
/// hit count and the Figure 6 link fields fill the rest of the paper's
/// "less than 120 bits" budget.
pub fn pt_entry_bits(cfg: &ImpConfig) -> u64 {
    let enable = 1;
    let shift = 3; // encodes one of the considered shift values
    let baseaddr = ADDRESS_BITS;
    let index = ADDRESS_BITS;
    let hit_cnt = 4;
    // ind_type (2) + next way/level/prev links (log2(PT) each).
    let link = (cfg.pt_entries as f64).log2().ceil() as u64;
    enable + shift + baseaddr + index + hit_cnt + 2 + 3 * link
}

/// Per-entry bit count of the IPD (Section 6.4.1): two index values plus
/// a `shifts x ba_len` base-address array.
pub fn ipd_entry_bits(cfg: &ImpConfig) -> u64 {
    let idx = 2 * ADDRESS_BITS;
    let bases = (cfg.shifts.len() as u64) * (cfg.baseaddr_array_len as u64) * ADDRESS_BITS;
    idx + bases
}

/// Per-entry bit count of the GP (Section 6.4.2): per sample an address
/// tag (48 - log2(64) = 42 bits) and an 8-bit touch mask, plus the
/// tot_sector / min_granu / granu / evict fields of Figure 8.
pub fn gp_entry_bits(cfg: &ImpConfig) -> u64 {
    let tag = ADDRESS_BITS - 6; // line-granular tag
    let mask = 8;
    let per_sample = tag + mask;
    let fields = 6 + 4 + 4 + 3; // tot_sector, min_granu, granu, evict
    (cfg.gp_samples as u64) * per_sample + fields
}

/// Computes the full storage breakdown for an IMP configuration attached
/// to the given memory hierarchy.
pub fn storage_cost(imp: &ImpConfig, mem: &MemConfig) -> StorageCost {
    let l1_lines = mem.l1d.size_bytes / mem.line_bytes;
    let l2_lines = mem.l2_slice.size_bytes / mem.line_bytes;
    StorageCost {
        pt_bits: (imp.pt_entries as u64) * pt_entry_bits(imp),
        ipd_bits: (imp.ipd_entries as u64) * ipd_entry_bits(imp),
        gp_bits: (imp.pt_entries as u64) * gp_entry_bits(imp),
        l1_mask_bits: l1_lines * u64::from(mem.l1d.sectors),
        l2_mask_bits: l2_lines * u64::from(mem.l2_slice.sectors),
    }
}

/// Sector-mask overhead as a fraction of cache capacity (paper: 1.6% for
/// 8 sectors, 0.4% for 2 sectors).
pub fn mask_overhead_fraction(sectors: u32, line_bytes: u64) -> f64 {
    f64::from(sectors) / (line_bytes as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::SystemConfig;

    #[test]
    fn matches_paper_section_6_4() {
        let sys = SystemConfig::paper_default(64);
        let c = storage_cost(&sys.imp, &sys.mem);

        // "each entry requires less than 120 bits" / "total PT storage
        // overhead is less than 2 Kbits".
        assert!(pt_entry_bits(&sys.imp) < 120, "{}", pt_entry_bits(&sys.imp));
        assert!(c.pt_bits < 2 * 1024);

        // "the IPD requires 3.5 Kbits" (2x48 + 16x48 = 864 b/entry, 4 entries).
        assert_eq!(ipd_entry_bits(&sys.imp), 864);
        assert!((c.ipd_bits as f64 / 1024.0 - 3.4).abs() < 0.3);

        // "IMP requires 5.5 Kbits or only 0.7 KB".
        assert!(c.imp_kbits() < 5.5);
        assert!(c.imp_kbits() > 4.0);
        assert!(c.imp_bytes() <= 720);

        // "total storage for an entry is less than 210 bits" (we land a
        // few bits over with explicit field widths) and "overall storage
        // of GP is 3.4 Kbits or 420 bytes".
        assert!(gp_entry_bits(&sys.imp) <= 220);
        assert!((c.gp_kbits() - 3.4).abs() < 0.3);
    }

    #[test]
    fn sector_mask_overheads() {
        // 8-bit mask on a 64-byte (512-bit) line: 1.6%.
        assert!((mask_overhead_fraction(8, 64) - 0.015625).abs() < 1e-9);
        // 2-bit mask: 0.4%.
        assert!((mask_overhead_fraction(2, 64) - 0.00390625).abs() < 1e-9);
    }

    #[test]
    fn shrinking_tables_shrinks_cost() {
        let sys = SystemConfig::paper_default(64);
        let mut small = sys.imp.clone();
        small.pt_entries = 8;
        small.ipd_entries = 2;
        let big = storage_cost(&sys.imp, &sys.mem);
        let little = storage_cost(&small, &sys.mem);
        assert!(little.imp_bits() < big.imp_bits());
        assert!(little.gp_bits < big.gp_bits);
    }
}
