//! The Granularity Predictor (GP) for partial cacheline accessing
//! (Section 4.2, Figure 8, Algorithm 1).
//!
//! For each indirect pattern the GP samples a few prefetched lines,
//! records which sectors demand accesses actually touch, and on eviction
//! updates `min_granu` (smallest run of consecutive touched sectors) and
//! `tot_sector` (total touched sectors). After `N` sampled evictions it
//! runs Algorithm 1 to decide between full-line and `min_granu`-sector
//! prefetches, accounting for per-request header overhead.

use imp_common::{LineAddr, SectorMask, SplitMix64, L1_SECTORS};

/// Decision produced by Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpDecision {
    /// Fetch entire cache lines.
    FullLine,
    /// Fetch `sectors` consecutive L1 sectors around the predicted word.
    Partial {
        /// Granule size in sectors (1..8).
        sectors: u32,
    },
}

#[derive(Clone, Debug)]
struct Sample {
    line: LineAddr,
    touched: SectorMask,
}

#[derive(Clone, Debug)]
struct GpEntry {
    /// Current predicted granularity in sectors (8 = full line).
    granu: u32,
    /// Smallest observed run of consecutive touched sectors.
    min_granu: u32,
    /// Total sectors touched over the current sampling window.
    tot_sector: u32,
    /// Sampled lines evicted so far in this window.
    evict: u32,
    samples: Vec<Sample>,
}

impl GpEntry {
    fn new() -> Self {
        GpEntry {
            granu: L1_SECTORS,
            min_granu: L1_SECTORS,
            tot_sector: 0,
            evict: 0,
            samples: Vec::new(),
        }
    }
}

/// The Granularity Predictor: one entry per Prefetch Table entry.
#[derive(Debug)]
pub struct Gp {
    entries: Vec<GpEntry>,
    samples_per_entry: usize,
    rng: SplitMix64,
}

impl Gp {
    /// Creates a GP aligned with a PT of `pt_entries` entries, sampling
    /// `samples_per_entry` prefetched lines per window (Table 2: 4).
    pub fn new(pt_entries: usize, samples_per_entry: usize, seed: u64) -> Self {
        Gp {
            entries: (0..pt_entries).map(|_| GpEntry::new()).collect(),
            samples_per_entry,
            rng: SplitMix64::new(seed),
        }
    }

    /// Resets the entry when a new pattern is installed in PT slot `pt`
    /// (initial granularity is a full cache line, Section 4.2).
    pub fn reset_entry(&mut self, pt: usize) {
        self.entries[pt] = GpEntry::new();
    }

    /// Current decision for PT entry `pt`.
    pub fn decision(&self, pt: usize) -> GpDecision {
        let g = self.entries[pt].granu;
        if g >= L1_SECTORS {
            GpDecision::FullLine
        } else {
            GpDecision::Partial { sectors: g }
        }
    }

    /// Called when IMP issues an indirect prefetch for `line` from PT
    /// entry `pt`; randomly selects up to `N` lines to track.
    pub fn on_indirect_prefetch(&mut self, pt: usize, line: LineAddr) {
        let cap = self.samples_per_entry;
        let e = &mut self.entries[pt];
        if e.samples.len() >= cap || e.samples.iter().any(|s| s.line == line) {
            return;
        }
        // Sample roughly one in four prefetches so tracked lines spread
        // over the pattern instead of clustering at the start.
        if self.rng.chance(0.25) {
            e.samples.push(Sample {
                line,
                touched: SectorMask::EMPTY,
            });
        }
    }

    /// Called on every demand access: if any entry tracks `line`, its
    /// touch bit vector accumulates the accessed sectors.
    pub fn on_demand_touch(&mut self, line: LineAddr, sectors: SectorMask) {
        for e in &mut self.entries {
            for s in &mut e.samples {
                if s.line == line {
                    s.touched = s.touched.union(sectors);
                }
            }
        }
    }

    /// Called when the L1 evicts `line`; runs Algorithm 1 once a window
    /// of `N` sampled evictions completes.
    pub fn on_eviction(&mut self, line: LineAddr) {
        let n = self.samples_per_entry as u32;
        for e in &mut self.entries {
            let Some(pos) = e.samples.iter().position(|s| s.line == line) else {
                continue;
            };
            let s = e.samples.swap_remove(pos);
            e.evict += 1;
            e.tot_sector += s.touched.count();
            if let Some(run) = s.touched.min_consecutive_run() {
                e.min_granu = e.min_granu.min(run);
            }
            if e.evict >= n {
                e.granu = algorithm1(n, e.tot_sector, e.min_granu);
                e.evict = 0;
                e.tot_sector = 0;
                e.min_granu = L1_SECTORS;
            }
        }
    }
}

/// Algorithm 1 of the paper. Returns the new granularity in sectors.
///
/// `cost_full` counts one header plus all sectors for each of the `n`
/// lines; `cost_partial` counts the touched sectors plus one header per
/// `min_granu`-sized partial request.
fn algorithm1(n: u32, tot_sector: u32, min_granu: u32) -> u32 {
    let cost_full = n * (L1_SECTORS + 1);
    let min_granu = min_granu.max(1);
    let cost_partial = tot_sector + tot_sector / min_granu;
    if cost_full <= cost_partial {
        L1_SECTORS
    } else {
        min_granu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    /// Drives one full sampling window for entry 0 where every tracked
    /// line gets `touched` demand sectors, and returns the decision.
    fn run_window(gp: &mut Gp, touched: SectorMask) -> GpDecision {
        let mut n = 0u64;
        // Keep prefetching until 4 samples have been evicted.
        while n < 10_000 {
            n += 1;
            gp.on_indirect_prefetch(0, line(n));
            gp.on_demand_touch(line(n), touched);
            gp.on_eviction(line(n));
            if let GpDecision::Partial { .. } = gp.decision(0) {
                break;
            }
            // A full-line decision may also be final; detect window end by
            // continuing — tests below bound the loop.
        }
        gp.decision(0)
    }

    #[test]
    fn sparse_touch_chooses_one_sector() {
        let mut gp = Gp::new(16, 4, 1);
        // Each line only ever sees one 8-byte sector touched: indirect
        // accesses with no spatial locality. Algorithm 1: costFull =
        // 4*9=36, costPartial = 4 + 4/1 = 8 -> partial with granu 1.
        let d = run_window(&mut gp, SectorMask::from_bits(0b0000_1000));
        assert_eq!(d, GpDecision::Partial { sectors: 1 });
    }

    #[test]
    fn dense_touch_keeps_full_line() {
        let mut gp = Gp::new(16, 4, 1);
        // Every sector touched: costFull = 36 <= costPartial = 32 + 32/8
        // = 36 -> full line.
        let mut n = 0u64;
        for _ in 0..10_000 {
            n += 1;
            gp.on_indirect_prefetch(0, line(n));
            gp.on_demand_touch(line(n), SectorMask::FULL_L1);
            gp.on_eviction(line(n));
        }
        assert_eq!(gp.decision(0), GpDecision::FullLine);
    }

    #[test]
    fn algorithm1_boundary_cases() {
        // Paper example numbers: n=4, 8 sectors/line.
        assert_eq!(algorithm1(4, 4, 1), 1); // 4 singles: 8 < 36
        assert_eq!(algorithm1(4, 32, 8), L1_SECTORS); // all touched: 36 <= 36
        assert_eq!(algorithm1(4, 16, 2), 2); // half touched in pairs: 24 < 36
                                             // Degenerate zero-touch window: partial wins with cost 0.
        assert_eq!(algorithm1(4, 0, 8), 8);
    }

    #[test]
    fn initial_decision_is_full_line() {
        let gp = Gp::new(16, 4, 1);
        assert_eq!(gp.decision(0), GpDecision::FullLine);
        assert_eq!(gp.decision(15), GpDecision::FullLine);
    }

    #[test]
    fn reset_entry_restores_full_line() {
        let mut gp = Gp::new(16, 4, 1);
        let d = run_window(&mut gp, SectorMask::from_bits(1));
        assert_ne!(d, GpDecision::FullLine);
        gp.reset_entry(0);
        assert_eq!(gp.decision(0), GpDecision::FullLine);
    }

    #[test]
    fn untracked_lines_are_ignored() {
        let mut gp = Gp::new(16, 4, 1);
        // Touch/evict lines that were never prefetched: no effect.
        gp.on_demand_touch(line(5), SectorMask::FULL_L1);
        gp.on_eviction(line(5));
        assert_eq!(gp.decision(0), GpDecision::FullLine);
    }

    #[test]
    fn entries_are_independent() {
        let mut gp = Gp::new(2, 4, 7);
        let d0 = run_window(&mut gp, SectorMask::from_bits(1));
        assert_eq!(d0, GpDecision::Partial { sectors: 1 });
        assert_eq!(gp.decision(1), GpDecision::FullLine);
    }
}
