//! The feedback/control plane of the prefetcher API.
//!
//! On every epoch boundary an adaptive manager distills the simulator's
//! timeliness ledger (plus traffic and TLB signals) into a [`Feedback`]
//! digest, hands it to its policy and to each core's prefetcher via
//! [`L1Prefetcher::on_feedback`](crate::L1Prefetcher::on_feedback), and
//! applies the merged [`Control`] until the next epoch: requests from
//! masked PCs are dropped, per-access request batches are truncated to
//! the degree limit, and a switch request rebuilds the prefetchers from
//! the registry mid-run.
//!
//! All counts in a `Feedback` are **deltas for one epoch**, not run
//! totals. Because a prefetch issued in one epoch can be used in a
//! later one, a single epoch's `used` delta may exceed its `issued`
//! delta; summed over all epochs the deltas reconcile exactly with the
//! end-of-run ledger (`issued == used + late + evicted_unused +
//! inflight_at_end`).

use imp_common::config::PrefetcherSpec;
use imp_common::stats::AccessClass;
use imp_common::{Cycle, Pc};
use imp_obs::LedgerCounts;

/// One epoch's distilled observation, delivered to
/// [`L1Prefetcher::on_feedback`](crate::L1Prefetcher::on_feedback) and
/// to manager policies.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Feedback {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// First cycle of the epoch window.
    pub start: Cycle,
    /// One past the last cycle of the epoch window.
    pub end: Cycle,
    /// Ledger deltas over every tracked prefetch this epoch.
    pub total: LedgerCounts,
    /// Per-PC ledger deltas (sorted by PC; PCs with all-zero deltas
    /// are omitted).
    pub per_pc: Vec<(Pc, LedgerCounts)>,
    /// Ledger deltas per [`AccessClass`].
    pub per_class: [LedgerCounts; AccessClass::ALL.len()],
    /// Ledger deltas per chain hop (index 0 = sequential prefetches,
    /// index `h` = indirect hop `h`; hops past the array are folded
    /// into the last bucket). Lets a policy watch deep-chase accuracy
    /// separately from the primary hop.
    pub per_hop: [LedgerCounts; imp_obs::MAX_HOPS],
    /// Demand misses issued this epoch.
    pub demand_misses: u64,
    /// Prefetch translations dropped by the TLB (`DropOnMiss`) this
    /// epoch — the pressure signal behind the demote-IMP rule.
    pub tlb_prefetch_drops: u64,
    /// NoC flit-hops accumulated this epoch.
    pub noc_flit_hops: u64,
    /// DRAM bytes (read + write) moved this epoch.
    pub dram_bytes: u64,
}

impl Feedback {
    /// Fraction of issued prefetches that were demand-used this epoch
    /// (1.0 when nothing was issued — an idle epoch is not inaccurate).
    pub fn accuracy(&self) -> f64 {
        ratio(self.total.used, self.total.issued)
    }

    /// Fraction of useful arrivals that were on time (`used / (used +
    /// late)`; 1.0 when nothing arrived usefully).
    pub fn timeliness(&self) -> f64 {
        ratio(self.total.used, self.total.used + self.total.late)
    }

    /// Fraction of issued prefetches evicted without use this epoch —
    /// the wasted-traffic signal a throttling policy keys on.
    pub fn evict_rate(&self) -> f64 {
        if self.total.issued == 0 {
            return 0.0;
        }
        self.total.evicted_unused as f64 / self.total.issued as f64
    }

    /// TLB drops per issued prefetch this epoch (drops can exceed
    /// issues: dropped prefetches never reach the MSHR issue point).
    pub fn tlb_drop_rate(&self) -> f64 {
        let attempts = self.total.issued + self.tlb_prefetch_drops;
        if attempts == 0 {
            return 0.0;
        }
        self.tlb_prefetch_drops as f64 / attempts as f64
    }

    /// Accuracy of indirect prefetches at chain hop `hop` this epoch
    /// (1.0 when none were issued at that hop). Hops past the tracked
    /// range share the last bucket.
    pub fn hop_accuracy(&self, hop: u8) -> f64 {
        let h = (hop as usize).min(self.per_hop.len() - 1);
        ratio(self.per_hop[h].used, self.per_hop[h].issued)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// What a policy (or a prefetcher's own
/// [`on_feedback`](crate::L1Prefetcher::on_feedback)) asks the
/// simulator to do until the next epoch. The default requests nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Control {
    /// Cap on prefetch requests issued per triggering access (demand
    /// observation or fill chain). `None` leaves the degree alone.
    pub degree_limit: Option<u32>,
    /// PCs whose prefetch requests are dropped before issue.
    pub masked_pcs: Vec<Pc>,
    /// Replace the running prefetcher with this registry spec (applied
    /// once per distinct spec; the manager ignores a switch to the
    /// already-active prefetcher).
    pub switch_to: Option<PrefetcherSpec>,
    /// Drop chained prefetch requests past this hop before issue
    /// (sequential prefetches are hop 0 and always survive). `None`
    /// leaves the chain depth alone.
    pub depth_limit: Option<u8>,
}

impl Control {
    /// The do-nothing control.
    pub fn none() -> Self {
        Control::default()
    }

    /// True when this control requests nothing.
    pub fn is_none(&self) -> bool {
        self.degree_limit.is_none()
            && self.masked_pcs.is_empty()
            && self.switch_to.is_none()
            && self.depth_limit.is_none()
    }

    /// Merges two controls conservatively: the tighter degree and depth
    /// limits win, masked-PC sets union, and the first switch request
    /// wins.
    #[must_use]
    pub fn merge(mut self, other: Control) -> Control {
        self.degree_limit = match (self.degree_limit, other.degree_limit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.depth_limit = match (self.depth_limit, other.depth_limit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.masked_pcs.extend(other.masked_pcs);
        self.masked_pcs.sort_unstable();
        self.masked_pcs.dedup();
        if self.switch_to.is_none() {
            self.switch_to = other.switch_to;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(issued: u64, used: u64, late: u64, evicted: u64) -> LedgerCounts {
        LedgerCounts {
            issued,
            fills: used + late + evicted,
            used,
            late,
            evicted_unused: evicted,
        }
    }

    #[test]
    fn rates_handle_empty_epochs() {
        let fb = Feedback::default();
        assert_eq!(fb.accuracy(), 1.0);
        assert_eq!(fb.timeliness(), 1.0);
        assert_eq!(fb.evict_rate(), 0.0);
        assert_eq!(fb.tlb_drop_rate(), 0.0);
    }

    #[test]
    fn rates_follow_the_ledger_deltas() {
        let fb = Feedback {
            total: counts(10, 4, 2, 4),
            tlb_prefetch_drops: 10,
            ..Feedback::default()
        };
        assert_eq!(fb.accuracy(), 0.4);
        assert!((fb.timeliness() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(fb.evict_rate(), 0.4);
        assert_eq!(fb.tlb_drop_rate(), 0.5);
    }

    #[test]
    fn merge_is_conservative() {
        let a = Control {
            degree_limit: Some(4),
            masked_pcs: vec![Pc::new(2), Pc::new(1)],
            switch_to: Some(PrefetcherSpec::new("stream")),
            depth_limit: Some(3),
        };
        let b = Control {
            degree_limit: Some(2),
            masked_pcs: vec![Pc::new(2), Pc::new(9)],
            switch_to: Some(PrefetcherSpec::new("none")),
            depth_limit: Some(1),
        };
        let m = a.merge(b);
        assert_eq!(m.degree_limit, Some(2));
        assert_eq!(m.depth_limit, Some(1), "tighter depth limit wins");
        assert_eq!(m.masked_pcs, vec![Pc::new(1), Pc::new(2), Pc::new(9)]);
        assert_eq!(m.switch_to, Some(PrefetcherSpec::new("stream")));
        assert!(Control::none().is_none());
        assert!(!m.is_none());
        let n = Control::none().merge(Control {
            degree_limit: Some(3),
            ..Control::none()
        });
        assert_eq!(n.degree_limit, Some(3));
    }
}
