//! The Indirect Pattern Detector (IPD) of Section 3.2.2 / Figure 4.
//!
//! Each entry tries to find `(shift, base)` such that two observed
//! (index value, miss address) pairs both satisfy Eq. (2):
//!
//! ```text
//! MissAddr1 = (B[i]   << shift) + base
//! MissAddr2 = (B[i+1] << shift) + base
//! ```
//!
//! On the first index value (`idx1`) the entry records, for each of the
//! next few cache misses and for each candidate shift, the implied base
//! (`miss - (idx1 << shift)`). Once the next index value (`idx2`) arrives,
//! each subsequent miss computes its own implied bases and compares them
//! against the stored array: a match detects the pattern. If a third index
//! value arrives first, detection fails and the entry is released.

use crate::stream::shift_apply;
use imp_common::Addr;

/// Identifier linking an IPD entry to the pattern slot it detects for
/// (assigned by [`crate::Imp`]).
pub type IpdOwner = u32;

/// Result of feeding an index access to the IPD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpdOutcome {
    /// Still collecting evidence.
    Pending,
    /// Third index value arrived without a match: detection failed and
    /// the entry has been released (the caller applies exponential
    /// back-off, Section 3.2.2).
    Failed,
}

/// A detected indirect pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detection {
    /// Owner slot that was detecting.
    pub owner: IpdOwner,
    /// The shift of Eq. (2).
    pub shift: i8,
    /// The base address of Eq. (2).
    pub base: u64,
}

#[derive(Clone, Debug)]
struct IpdEntry {
    owner: IpdOwner,
    idx1: u64,
    idx2: Option<u64>,
    /// `bases[s][k]`: base implied by pairing idx1 with the k-th miss,
    /// under shift `shifts[s]`.
    bases: Vec<Vec<u64>>,
    /// Misses paired with idx1 so far (bounded by the base-array length).
    misses_after_idx1: usize,
    /// Misses compared after idx2 (bounded as well).
    misses_after_idx2: usize,
}

/// The Indirect Pattern Detector: a small table of in-flight detections.
#[derive(Debug)]
pub struct Ipd {
    entries: Vec<Option<IpdEntry>>,
    shifts: Vec<i8>,
    ba_len: usize,
}

impl Ipd {
    /// Creates an IPD with `entries` entries, candidate `shifts` and a
    /// per-shift base array of `ba_len` (Table 2: 4 entries, shifts
    /// {2, 3, 4, -3}, length 4).
    pub fn new(entries: usize, shifts: Vec<i8>, ba_len: usize) -> Self {
        Ipd {
            entries: vec![None; entries],
            shifts,
            ba_len,
        }
    }

    /// Number of free entries.
    pub fn free_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.none_ref()).count()
    }

    /// True if `owner` currently holds an entry.
    pub fn has_entry(&self, owner: IpdOwner) -> bool {
        self.entries.iter().flatten().any(|e| e.owner == owner)
    }

    /// Tries to allocate an entry for `owner`, seeded with the first
    /// index value. Returns `false` when the table is full or the owner
    /// already holds an entry.
    pub fn try_allocate(&mut self, owner: IpdOwner, idx1: u64) -> bool {
        if self.has_entry(owner) {
            return false;
        }
        let Some(slot) = self.entries.iter_mut().find(|e| e.none_ref()) else {
            return false;
        };
        *slot = Some(IpdEntry {
            owner,
            idx1,
            idx2: None,
            bases: vec![Vec::with_capacity(self.ba_len); self.shifts.len()],
            misses_after_idx1: 0,
            misses_after_idx2: 0,
        });
        true
    }

    /// Releases `owner`'s entry if present.
    pub fn release(&mut self, owner: IpdOwner) {
        for e in &mut self.entries {
            if e.as_ref().is_some_and(|x| x.owner == owner) {
                *e = None;
            }
        }
    }

    /// Feeds the next index value of `owner`'s stream. The second value
    /// arms comparison; the third without a match fails the detection.
    pub fn on_index_access(&mut self, owner: IpdOwner, value: u64) -> IpdOutcome {
        let Some(e) = self.entries.iter_mut().flatten().find(|e| e.owner == owner) else {
            return IpdOutcome::Pending;
        };
        if e.idx2.is_none() {
            // A repeated index value cannot discriminate (any repeated
            // miss address would trivially "match"); keep waiting.
            if value != e.idx1 {
                e.idx2 = Some(value);
            }
            IpdOutcome::Pending
        } else {
            // Third index value: pattern not found.
            self.release(owner);
            IpdOutcome::Failed
        }
    }

    /// Feeds one L1 miss to every in-flight detection; returns the first
    /// detection triggered, whose entry is released (Section 3.2.2).
    pub fn on_miss(&mut self, addr: Addr) -> Option<Detection> {
        let mut detected: Option<Detection> = None;
        for slot in &mut self.entries {
            let Some(e) = slot.as_mut() else { continue };
            match e.idx2 {
                None => {
                    if e.misses_after_idx1 < self.ba_len {
                        for (s, &shift) in self.shifts.iter().enumerate() {
                            let base = addr.raw().wrapping_sub(shift_apply(e.idx1, shift));
                            e.bases[s].push(base);
                        }
                        e.misses_after_idx1 += 1;
                    }
                }
                Some(idx2) => {
                    if detected.is_some() || e.misses_after_idx2 >= self.ba_len {
                        continue;
                    }
                    e.misses_after_idx2 += 1;
                    for (s, &shift) in self.shifts.iter().enumerate() {
                        let base = addr.raw().wrapping_sub(shift_apply(idx2, shift));
                        if e.bases[s].contains(&base) {
                            detected = Some(Detection {
                                owner: e.owner,
                                shift,
                                base,
                            });
                            break;
                        }
                    }
                }
            }
        }
        if let Some(d) = detected {
            self.release(d.owner);
        }
        detected
    }
}

trait OptionExt {
    fn none_ref(&self) -> bool;
}
impl<T> OptionExt for Option<T> {
    fn none_ref(&self) -> bool {
        self.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_ipd() -> Ipd {
        Ipd::new(4, vec![2, 3, 4, -3], 4)
    }

    /// The worked example of Figure 4: idx1 = 1, misses 0x100 and 0x120,
    /// idx2 = 16, miss 0x13C detects shift=2, base=0xFC.
    #[test]
    fn figure4_worked_example() {
        let mut ipd = paper_ipd();
        assert!(ipd.try_allocate(0, 1));
        assert!(ipd.on_miss(Addr::new(0x100)).is_none());
        assert!(ipd.on_miss(Addr::new(0x120)).is_none());
        assert_eq!(ipd.on_index_access(0, 16), IpdOutcome::Pending);
        let d = ipd.on_miss(Addr::new(0x13C)).expect("pattern detected");
        assert_eq!(d.shift, 2);
        assert_eq!(d.base, 0xFC);
        assert!(!ipd.has_entry(0), "entry released after detection");
    }

    #[test]
    fn detects_each_supported_shift() {
        for &shift in &[2i8, 3, 4, -3] {
            let mut ipd = paper_ipd();
            let base = 0x8_0000u64;
            // Pick index values that survive a right shift exactly.
            let (i1, i2) = if shift == -3 { (64, 128) } else { (7, 21) };
            assert!(ipd.try_allocate(0, i1));
            ipd.on_miss(Addr::new(base + shift_apply(i1, shift)));
            ipd.on_index_access(0, i2);
            let d = ipd
                .on_miss(Addr::new(base + shift_apply(i2, shift)))
                .unwrap_or_else(|| panic!("shift {shift} not detected"));
            assert_eq!(d.base, base, "shift {shift}");
            assert_eq!(d.shift, shift);
        }
    }

    #[test]
    fn unrelated_misses_do_not_fool_detection() {
        let mut ipd = paper_ipd();
        ipd.try_allocate(0, 10);
        // Four unrelated misses fill the base array.
        for m in [0x5000u64, 0x777000, 0x12345640, 0x98765400] {
            assert!(ipd.on_miss(Addr::new(m)).is_none());
        }
        ipd.on_index_access(0, 11);
        // An unrelated miss after idx2 should not match.
        assert!(ipd.on_miss(Addr::new(0xABCDE0)).is_none());
    }

    #[test]
    fn third_index_fails_detection() {
        let mut ipd = paper_ipd();
        ipd.try_allocate(0, 1);
        ipd.on_miss(Addr::new(0x100));
        assert_eq!(ipd.on_index_access(0, 2), IpdOutcome::Pending);
        assert_eq!(ipd.on_index_access(0, 3), IpdOutcome::Failed);
        assert!(!ipd.has_entry(0));
    }

    #[test]
    fn repeated_index_value_does_not_arm_comparison() {
        let mut ipd = paper_ipd();
        ipd.try_allocate(0, 5);
        ipd.on_miss(Addr::new(0x100));
        assert_eq!(ipd.on_index_access(0, 5), IpdOutcome::Pending);
        // A miss equal to an earlier one must not trigger a degenerate
        // "detection" off idx1 == idx2.
        assert!(ipd.on_miss(Addr::new(0x100)).is_none());
    }

    #[test]
    fn table_capacity_enforced() {
        let mut ipd = Ipd::new(2, vec![2], 4);
        assert!(ipd.try_allocate(0, 1));
        assert!(ipd.try_allocate(1, 2));
        assert!(!ipd.try_allocate(2, 3), "table full");
        assert_eq!(ipd.free_entries(), 0);
        ipd.release(0);
        assert!(ipd.try_allocate(2, 3));
    }

    #[test]
    fn duplicate_owner_rejected() {
        let mut ipd = paper_ipd();
        assert!(ipd.try_allocate(7, 1));
        assert!(!ipd.try_allocate(7, 2));
    }

    #[test]
    fn concurrent_detections_are_independent() {
        let mut ipd = paper_ipd();
        // Owner 0: shift 3 at base 0x10000; owner 1: shift 2 at 0x40000.
        ipd.try_allocate(0, 100);
        ipd.try_allocate(1, 200);
        ipd.on_miss(Addr::new(0x10000 + 100 * 8));
        ipd.on_miss(Addr::new(0x40000 + 200 * 4));
        ipd.on_index_access(0, 150);
        ipd.on_index_access(1, 250);
        let d0 = ipd
            .on_miss(Addr::new(0x10000 + 150 * 8))
            .expect("owner 0 detects");
        assert_eq!((d0.owner, d0.shift, d0.base), (0, 3, 0x10000));
        let d1 = ipd
            .on_miss(Addr::new(0x40000 + 250 * 4))
            .expect("owner 1 detects");
        assert_eq!((d1.owner, d1.shift, d1.base), (1, 2, 0x40000));
    }

    #[test]
    fn miss_budget_after_idx2_is_bounded() {
        let mut ipd = paper_ipd();
        ipd.try_allocate(0, 1);
        ipd.on_miss(Addr::new(0x1000 + 8));
        ipd.on_index_access(0, 2);
        // Exhaust the comparison budget with unrelated misses.
        for k in 0..4u64 {
            assert!(ipd.on_miss(Addr::new(0xF000_0000 + k * 4096)).is_none());
        }
        // The real second miss now arrives too late to be examined.
        assert!(ipd.on_miss(Addr::new(0x1000 + 16)).is_none());
    }
}
