//! Observation and request types shared by all prefetchers.

use crate::feedback::{Control, Feedback};
use imp_common::stats::AccessClass;
use imp_common::{Addr, FastMap, LineAddr, Pc, SectorMask};
use imp_obs::CoreProbe;

/// One L1 access as observed by a prefetcher snooping the cache
/// (Figure 3: IMP sees both the access stream and the miss stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Static instruction identifier of the access.
    pub pc: Pc,
    /// Demanded byte address.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u32,
    /// True for stores.
    pub is_write: bool,
    /// True if the access hit in the L1 (misses feed the IPD).
    pub miss: bool,
}

impl Access {
    /// A load that hit in the L1.
    pub fn load_hit(pc: Pc, addr: Addr, size: u32) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: false,
            miss: false,
        }
    }

    /// A load that missed in the L1.
    pub fn load_miss(pc: Pc, addr: Addr, size: u32) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: false,
            miss: true,
        }
    }

    /// A store (hit or miss per `miss`).
    pub fn store(pc: Pc, addr: Addr, size: u32, miss: bool) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: true,
            miss,
        }
    }
}

/// What kind of prefetch a request is (used for statistics, for
/// multi-level chaining, and for per-hop attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchKind {
    /// Sequential (next-line / stream) prefetch, possibly of an index
    /// array.
    Sequential,
    /// Indirect prefetch generated from Eq. (2); `pt` is the Prefetch
    /// Table entry that produced it and `hop` its 1-based chain depth
    /// (1 = `A[B[i]]`, 2 = the outer hop of `A[B[C[i]]]`, ...).
    Indirect {
        /// Producing PT entry.
        pt: usize,
        /// 1-based chain hop of the producing pattern.
        hop: u8,
    },
    /// Translation-only chain-ahead request: the depth-k frontier asks
    /// the fabric to prefill the *translation* of the next hop's target
    /// page without fetching its data. Never issued to the cache
    /// hierarchy; the fabric routes it straight to the
    /// translation-prefetch port (and drops it when translation
    /// prefetching is off).
    TranslationOnly {
        /// 1-based chain hop of the page being pre-translated.
        hop: u8,
    },
}

impl PrefetchKind {
    /// Pre-rename alias for [`PrefetchKind::Sequential`].
    #[deprecated(note = "renamed to `PrefetchKind::Sequential`")]
    #[allow(non_upper_case_globals)]
    pub const Stream: PrefetchKind = PrefetchKind::Sequential;

    /// The request's 1-based chain hop (0 for sequential prefetches,
    /// which trail the demand stream rather than chasing values).
    pub fn hop(self) -> u8 {
        match self {
            PrefetchKind::Sequential => 0,
            PrefetchKind::Indirect { hop, .. } | PrefetchKind::TranslationOnly { hop } => hop,
        }
    }

    /// True for translation-only chain-ahead requests.
    pub fn is_translation_only(self) -> bool {
        matches!(self, PrefetchKind::TranslationOnly { .. })
    }
}

/// A prefetch emitted toward the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// PC of the access (or pattern's index stream) that triggered the
    /// request: [`StreamTable::DETACHED_PC`](crate::StreamTable) for
    /// secondary patterns with no instruction stream of their own. The
    /// timeliness ledger keys its per-PC coverage/accuracy counts on
    /// this.
    pub pc: Pc,
    /// The demanded byte address the prefetch anticipates.
    pub addr: Addr,
    /// Sectors of the line to fetch (full mask when partial cacheline
    /// accessing is off).
    pub sectors: SectorMask,
    /// Fetch in Exclusive/Modified state (the pattern's accesses write).
    pub exclusive: bool,
    /// Origin of the request.
    pub kind: PrefetchKind,
}

impl PrefetchRequest {
    /// The target cache line.
    pub fn line(&self) -> LineAddr {
        LineAddr::containing(self.addr)
    }

    /// True when the target address was computed from a *data value*
    /// (an indirect prediction). Sequential prefetches trail the demand
    /// stream and find their pages TLB-resident; indirect ones land on
    /// arbitrary pages, so they are the requests worth prefilling
    /// translations for (`TlbConfig::tlb_prefetch` routes them through
    /// the simulator's translation-prefetch port).
    /// [`PrefetchKind::TranslationOnly`] requests return `false` here:
    /// they do not *also* want a translation prefetch — they *are* one,
    /// and the fabric routes them before this predicate is consulted.
    pub fn wants_translation_prefetch(&self) -> bool {
        matches!(self.kind, PrefetchKind::Indirect { .. })
    }
}

/// Where IMP reads index values from.
///
/// In hardware IMP reads `B[i + delta]` out of the cache once the stream
/// prefetcher has brought the line in; `read_value` returns `None` when
/// the value is not yet available, and the caller may retry after the
/// corresponding line fill.
pub trait IndexValueSource {
    /// Reads a zero-extended little-endian unsigned value of `size`
    /// bytes at `addr`, or `None` if the location's value is not
    /// available to the prefetcher yet.
    fn read_value(&mut self, addr: Addr, size: u32) -> Option<u64>;
}

/// A table-backed [`IndexValueSource`] for unit tests and examples.
#[derive(Debug, Default)]
pub struct MapValueSource {
    values: FastMap<(u64, u32), u64>,
}

impl MapValueSource {
    /// Creates an empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` as the `size`-byte integer at `addr`.
    pub fn insert(&mut self, addr: Addr, size: u32, value: u64) {
        self.values.insert((addr.raw(), size), value);
    }
}

impl IndexValueSource for MapValueSource {
    fn read_value(&mut self, addr: Addr, size: u32) -> Option<u64> {
        self.values.get(&(addr.raw(), size)).copied()
    }
}

/// Counters shared by all prefetcher implementations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Stream prefetches emitted.
    pub stream_prefetches: u64,
    /// Indirect prefetches emitted.
    pub indirect_prefetches: u64,
    /// Indirect patterns detected by the IPD.
    pub patterns_detected: u64,
    /// IPD detections that failed (third index with no match).
    pub detect_failures: u64,
    /// Secondary (multi-way) patterns detected.
    pub ways_detected: u64,
    /// Secondary (multi-level) patterns detected.
    pub levels_detected: u64,
    /// Prefetches issued with a sub-line sector mask.
    pub partial_prefetches: u64,
    /// Index-value reads that failed because the index line was not yet
    /// cache-resident (the prefetch was deferred).
    pub value_unavailable: u64,
    /// Deferred indirect prefetches dropped because the retry list was
    /// full.
    pub deferred_drops: u64,
    /// Deferred indirect prefetches successfully retried after their
    /// index line filled.
    pub deferred_retries: u64,
    /// Prefetches refused by a full MSHR file (set by the simulator).
    pub mshr_drops: u64,
    /// Translation-only chain-ahead requests emitted at the depth-k
    /// data frontier (one hop beyond the deepest data prefetch).
    pub translation_ahead: u64,
    /// Diagnostic: index-stream accesses seen as continued+established.
    pub dbg_continued: u64,
    /// Diagnostic: of those, accesses whose own value was unreadable.
    pub dbg_own_value_miss: u64,
    /// Diagnostic: of those, accesses with an enabled indirect pattern.
    pub dbg_enabled: u64,
    /// Diagnostic: of those, accesses with prefetching active.
    pub dbg_prefetching: u64,
}

/// Everything a prefetcher hook may touch, bundled so the hot path
/// stays allocation-free: the caller-owned request buffer, the
/// triggering PC, the access class of the triggering request, a value
/// source for index reads, and an observability handle.
///
/// This folds the old `on_access`/`*_collect` dual surface into one
/// context type: callers build a `PrefetchCtx` over their pooled
/// buffer and hand it to [`L1Prefetcher::on_access_ctx`] /
/// [`L1Prefetcher::on_prefetch_fill_ctx`].
pub struct PrefetchCtx<'a> {
    /// PC of the access or request that triggered this hook.
    pub pc: Pc,
    /// Access class of the trigger: [`AccessClass::Other`] for demand
    /// accesses, the request's class for fill chaining.
    pub class: AccessClass,
    /// Where index values are read from (the L1, in the simulator).
    pub values: &'a mut dyn IndexValueSource,
    /// Caller-owned output buffer (not cleared first) — push emitted
    /// requests here, or use [`PrefetchCtx::emit`].
    pub out: &'a mut Vec<PrefetchRequest>,
    /// Per-core observability handle (disabled outside a probed run).
    pub probe: &'a CoreProbe,
}

impl<'a> PrefetchCtx<'a> {
    /// A context for a demand-access observation.
    pub fn new(
        pc: Pc,
        class: AccessClass,
        values: &'a mut dyn IndexValueSource,
        out: &'a mut Vec<PrefetchRequest>,
        probe: &'a CoreProbe,
    ) -> Self {
        PrefetchCtx {
            pc,
            class,
            values,
            out,
            probe,
        }
    }

    /// Pushes one request onto the output buffer.
    #[inline]
    pub fn emit(&mut self, req: PrefetchRequest) {
        self.out.push(req);
    }
}

/// The [`AccessClass`] a request of `kind` belongs to.
pub fn class_of(kind: PrefetchKind) -> AccessClass {
    match kind {
        PrefetchKind::Sequential => AccessClass::Stream,
        PrefetchKind::Indirect { .. } | PrefetchKind::TranslationOnly { .. } => {
            AccessClass::Indirect
        }
    }
}

/// The interface between an L1 cache and its attached prefetcher.
///
/// Requests are pushed into the caller-supplied buffer inside the
/// [`PrefetchCtx`] rather than returned: prefetchers run on every
/// demand access, and reusing one buffer across accesses keeps the hot
/// path allocation-free.
///
/// # Which hooks to implement
///
/// Implement **exactly one** of [`on_access_ctx`] (preferred) or the
/// deprecated [`on_access`]: each one's default forwards to the other,
/// so a type overriding neither recurses. Existing plugins that
/// implement the pre-context hooks (`on_access`, `on_prefetch_fill`)
/// keep compiling and keep working — the simulator calls the `_ctx`
/// hooks, whose defaults forward to the old signatures — but get a
/// deprecation warning nudging them toward the context form.
///
/// # Feedback
///
/// When an adaptive manager is configured, [`on_feedback`] delivers an
/// epoch [`Feedback`] digest and lets the prefetcher request its own
/// throttling via [`Control`]. The default ignores feedback.
///
/// [`on_access_ctx`]: L1Prefetcher::on_access_ctx
/// [`on_access`]: L1Prefetcher::on_access
/// [`on_feedback`]: L1Prefetcher::on_feedback
pub trait L1Prefetcher {
    /// Observes one demand access (hit or miss), pushing any prefetches
    /// to issue onto `ctx.out` (which is not cleared first).
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        #[allow(deprecated)] // forwards to the legacy hook for old plugins
        self.on_access(access, ctx.values, ctx.out);
    }

    /// Notifies that a previously issued prefetch has filled the L1,
    /// pushing any follow-on prefetches (multi-level indirection) onto
    /// `ctx.out`.
    fn on_prefetch_fill_ctx(&mut self, request: PrefetchRequest, ctx: &mut PrefetchCtx<'_>) {
        #[allow(deprecated)] // forwards to the legacy hook for old plugins
        self.on_prefetch_fill(request, ctx.values, ctx.out);
    }

    /// Receives one epoch's [`Feedback`] digest from the adaptive
    /// manager and may return a [`Control`] requesting throttling, PC
    /// masking, or a prefetcher switch. Only called when a manager is
    /// configured (`SystemConfig::manager`); the default requests
    /// nothing.
    fn on_feedback(&mut self, feedback: &Feedback) -> Control {
        let _ = feedback;
        Control::none()
    }

    /// Legacy demand-access hook.
    #[deprecated(note = "implement `on_access_ctx(access, &mut PrefetchCtx)` instead")]
    fn on_access(
        &mut self,
        access: Access,
        values: &mut dyn IndexValueSource,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let probe = CoreProbe::disabled();
        let mut ctx = PrefetchCtx::new(access.pc, AccessClass::Other, values, out, &probe);
        self.on_access_ctx(access, &mut ctx);
    }

    /// Legacy fill hook. Unlike [`L1Prefetcher::on_access`] this does
    /// **not** forward to the context form (its historical default was
    /// a no-op, and forwarding both ways would recurse); new code
    /// should call and implement [`L1Prefetcher::on_prefetch_fill_ctx`].
    #[deprecated(note = "implement `on_prefetch_fill_ctx(request, &mut PrefetchCtx)` instead")]
    fn on_prefetch_fill(
        &mut self,
        request: PrefetchRequest,
        values: &mut dyn IndexValueSource,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let _ = (request, values, out);
    }

    /// [`L1Prefetcher::on_access_ctx`], collecting into a fresh `Vec`.
    #[deprecated(note = "build a `PrefetchCtx` over your own buffer and call `on_access_ctx`")]
    fn on_access_collect(
        &mut self,
        access: Access,
        values: &mut dyn IndexValueSource,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        let probe = CoreProbe::disabled();
        let mut ctx = PrefetchCtx::new(access.pc, AccessClass::Other, values, &mut out, &probe);
        self.on_access_ctx(access, &mut ctx);
        out
    }

    /// [`L1Prefetcher::on_prefetch_fill_ctx`], collecting into a fresh
    /// `Vec`.
    #[deprecated(
        note = "build a `PrefetchCtx` over your own buffer and call `on_prefetch_fill_ctx`"
    )]
    fn on_prefetch_fill_collect(
        &mut self,
        request: PrefetchRequest,
        values: &mut dyn IndexValueSource,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        let probe = CoreProbe::disabled();
        let mut ctx =
            PrefetchCtx::new(request.pc, class_of(request.kind), values, &mut out, &probe);
        self.on_prefetch_fill_ctx(request, &mut ctx);
        out
    }

    /// Notifies that the L1 evicted `line` (feeds the Granularity
    /// Predictor's sampling).
    fn on_eviction(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// Observes a demand access for granularity sampling (which sectors
    /// of `line` the demand touched).
    fn on_demand_touch(&mut self, line: LineAddr, sectors: SectorMask) {
        let _ = (line, sectors);
    }

    /// Statistics snapshot.
    fn stats(&self) -> &PrefetcherStats;
}

/// A prefetcher that never prefetches.
#[derive(Debug, Default)]
pub struct NullPrefetcher {
    stats: PrefetcherStats,
}

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl L1Prefetcher for NullPrefetcher {
    fn on_access_ctx(&mut self, _access: Access, _ctx: &mut PrefetchCtx<'_>) {}

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    // Deliberate: the deprecated shim surface must keep working for
    // out-of-crate plugins; exercising it here keeps it covered.
    #![allow(deprecated)]

    use super::*;

    /// A pre-context-API plugin: overrides only the legacy `on_access`
    /// signature. The `_ctx` defaults must route to it unchanged.
    struct LegacyNextLine {
        stats: PrefetcherStats,
    }

    impl L1Prefetcher for LegacyNextLine {
        fn on_access(
            &mut self,
            access: Access,
            _values: &mut dyn IndexValueSource,
            out: &mut Vec<PrefetchRequest>,
        ) {
            out.push(PrefetchRequest {
                pc: access.pc,
                addr: Addr::new(access.addr.raw() + 64),
                sectors: SectorMask::FULL_L1,
                exclusive: false,
                // The pre-rename alias must keep resolving for legacy
                // plugins (and keep warning; see CI's force-warn step).
                kind: PrefetchKind::Stream,
            });
        }

        fn stats(&self) -> &PrefetcherStats {
            &self.stats
        }
    }

    #[test]
    fn legacy_hooks_are_reached_through_the_ctx_surface() {
        let mut p = LegacyNextLine {
            stats: PrefetcherStats::default(),
        };
        let mut s = MapValueSource::new();
        let mut out = Vec::new();
        let probe = CoreProbe::disabled();
        let mut ctx = PrefetchCtx::new(Pc::new(1), AccessClass::Other, &mut s, &mut out, &probe);
        p.on_access_ctx(Access::load_miss(Pc::new(1), Addr::new(128), 8), &mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].addr, Addr::new(192));
        // And the collect shim routes through the ctx surface too.
        let reqs = p.on_access_collect(Access::load_miss(Pc::new(1), Addr::new(256), 8), &mut s);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, Addr::new(320));
    }

    #[test]
    fn map_source_roundtrip() {
        let mut s = MapValueSource::new();
        s.insert(Addr::new(0x10), 4, 99);
        assert_eq!(s.read_value(Addr::new(0x10), 4), Some(99));
        assert_eq!(s.read_value(Addr::new(0x10), 8), None);
        assert_eq!(s.read_value(Addr::new(0x14), 4), None);
    }

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher::new();
        let mut s = MapValueSource::new();
        let reqs = p.on_access_collect(Access::load_miss(Pc::new(1), Addr::new(64), 8), &mut s);
        assert!(reqs.is_empty());
        assert_eq!(p.stats().stream_prefetches, 0);
    }

    #[test]
    fn request_line_is_derived_from_addr() {
        let r = PrefetchRequest {
            pc: Pc::new(0),
            addr: Addr::new(0x1238),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Sequential,
        };
        assert_eq!(r.line(), LineAddr::containing(Addr::new(0x1200)));
    }

    #[test]
    fn only_indirect_requests_want_translation_prefetch() {
        let mut r = PrefetchRequest {
            pc: Pc::new(0),
            addr: Addr::new(0x1238),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Sequential,
        };
        assert!(!r.wants_translation_prefetch());
        r.kind = PrefetchKind::Indirect { pt: 3, hop: 1 };
        assert!(r.wants_translation_prefetch());
        // Translation-only requests are routed, not re-translated.
        r.kind = PrefetchKind::TranslationOnly { hop: 3 };
        assert!(!r.wants_translation_prefetch());
        assert!(r.kind.is_translation_only());
    }

    #[test]
    fn hops_and_the_stream_alias_track_the_kind() {
        assert_eq!(PrefetchKind::Sequential.hop(), 0);
        assert_eq!(PrefetchKind::Indirect { pt: 0, hop: 2 }.hop(), 2);
        assert_eq!(PrefetchKind::TranslationOnly { hop: 4 }.hop(), 4);
        assert_eq!(PrefetchKind::Stream, PrefetchKind::Sequential);
        assert_eq!(class_of(PrefetchKind::Sequential), AccessClass::Stream);
        assert_eq!(
            class_of(PrefetchKind::TranslationOnly { hop: 3 }),
            AccessClass::Indirect
        );
    }
}
