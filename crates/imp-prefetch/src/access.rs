//! Observation and request types shared by all prefetchers.

use imp_common::{Addr, FastMap, LineAddr, Pc, SectorMask};

/// One L1 access as observed by a prefetcher snooping the cache
/// (Figure 3: IMP sees both the access stream and the miss stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Static instruction identifier of the access.
    pub pc: Pc,
    /// Demanded byte address.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u32,
    /// True for stores.
    pub is_write: bool,
    /// True if the access hit in the L1 (misses feed the IPD).
    pub miss: bool,
}

impl Access {
    /// A load that hit in the L1.
    pub fn load_hit(pc: Pc, addr: Addr, size: u32) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: false,
            miss: false,
        }
    }

    /// A load that missed in the L1.
    pub fn load_miss(pc: Pc, addr: Addr, size: u32) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: false,
            miss: true,
        }
    }

    /// A store (hit or miss per `miss`).
    pub fn store(pc: Pc, addr: Addr, size: u32, miss: bool) -> Self {
        Access {
            pc,
            addr,
            size,
            is_write: true,
            miss,
        }
    }
}

/// What kind of prefetch a request is (used for statistics and for
/// multi-level chaining).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchKind {
    /// Stream (next-line) prefetch, possibly of an index array.
    Stream,
    /// Indirect prefetch generated from Eq. (2); `pt` is the Prefetch
    /// Table entry that produced it.
    Indirect {
        /// Producing PT entry.
        pt: usize,
    },
}

/// A prefetch emitted toward the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// PC of the access (or pattern's index stream) that triggered the
    /// request: [`StreamTable::DETACHED_PC`](crate::StreamTable) for
    /// secondary patterns with no instruction stream of their own. The
    /// timeliness ledger keys its per-PC coverage/accuracy counts on
    /// this.
    pub pc: Pc,
    /// The demanded byte address the prefetch anticipates.
    pub addr: Addr,
    /// Sectors of the line to fetch (full mask when partial cacheline
    /// accessing is off).
    pub sectors: SectorMask,
    /// Fetch in Exclusive/Modified state (the pattern's accesses write).
    pub exclusive: bool,
    /// Origin of the request.
    pub kind: PrefetchKind,
}

impl PrefetchRequest {
    /// The target cache line.
    pub fn line(&self) -> LineAddr {
        LineAddr::containing(self.addr)
    }

    /// True when the target address was computed from a *data value*
    /// (an indirect prediction). Stream prefetches trail the demand
    /// stream and find their pages TLB-resident; indirect ones land on
    /// arbitrary pages, so they are the requests worth prefilling
    /// translations for (`TlbConfig::tlb_prefetch` routes them through
    /// the simulator's translation-prefetch port).
    pub fn wants_translation_prefetch(&self) -> bool {
        matches!(self.kind, PrefetchKind::Indirect { .. })
    }
}

/// Where IMP reads index values from.
///
/// In hardware IMP reads `B[i + delta]` out of the cache once the stream
/// prefetcher has brought the line in; `read_value` returns `None` when
/// the value is not yet available, and the caller may retry after the
/// corresponding line fill.
pub trait IndexValueSource {
    /// Reads a zero-extended little-endian unsigned value of `size`
    /// bytes at `addr`, or `None` if the location's value is not
    /// available to the prefetcher yet.
    fn read_value(&mut self, addr: Addr, size: u32) -> Option<u64>;
}

/// A table-backed [`IndexValueSource`] for unit tests and examples.
#[derive(Debug, Default)]
pub struct MapValueSource {
    values: FastMap<(u64, u32), u64>,
}

impl MapValueSource {
    /// Creates an empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` as the `size`-byte integer at `addr`.
    pub fn insert(&mut self, addr: Addr, size: u32, value: u64) {
        self.values.insert((addr.raw(), size), value);
    }
}

impl IndexValueSource for MapValueSource {
    fn read_value(&mut self, addr: Addr, size: u32) -> Option<u64> {
        self.values.get(&(addr.raw(), size)).copied()
    }
}

/// Counters shared by all prefetcher implementations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Stream prefetches emitted.
    pub stream_prefetches: u64,
    /// Indirect prefetches emitted.
    pub indirect_prefetches: u64,
    /// Indirect patterns detected by the IPD.
    pub patterns_detected: u64,
    /// IPD detections that failed (third index with no match).
    pub detect_failures: u64,
    /// Secondary (multi-way) patterns detected.
    pub ways_detected: u64,
    /// Secondary (multi-level) patterns detected.
    pub levels_detected: u64,
    /// Prefetches issued with a sub-line sector mask.
    pub partial_prefetches: u64,
    /// Index-value reads that failed because the index line was not yet
    /// cache-resident (the prefetch was deferred).
    pub value_unavailable: u64,
    /// Deferred indirect prefetches dropped because the retry list was
    /// full.
    pub deferred_drops: u64,
    /// Deferred indirect prefetches successfully retried after their
    /// index line filled.
    pub deferred_retries: u64,
    /// Prefetches refused by a full MSHR file (set by the simulator).
    pub mshr_drops: u64,
    /// Diagnostic: index-stream accesses seen as continued+established.
    pub dbg_continued: u64,
    /// Diagnostic: of those, accesses whose own value was unreadable.
    pub dbg_own_value_miss: u64,
    /// Diagnostic: of those, accesses with an enabled indirect pattern.
    pub dbg_enabled: u64,
    /// Diagnostic: of those, accesses with prefetching active.
    pub dbg_prefetching: u64,
}

/// The interface between an L1 cache and its attached prefetcher.
///
/// Requests are pushed into a caller-supplied buffer rather than
/// returned: prefetchers run on every demand access, and reusing one
/// buffer across accesses keeps the hot path allocation-free. The
/// `*_collect` wrappers provide the convenient owned-`Vec` form for
/// tests and examples.
pub trait L1Prefetcher {
    /// Observes one demand access (hit or miss), pushing any prefetches
    /// to issue onto `out` (which is not cleared first).
    fn on_access(
        &mut self,
        access: Access,
        values: &mut dyn IndexValueSource,
        out: &mut Vec<PrefetchRequest>,
    );

    /// Notifies that a previously issued prefetch has filled the L1,
    /// pushing any follow-on prefetches (multi-level indirection) onto
    /// `out`.
    fn on_prefetch_fill(
        &mut self,
        request: PrefetchRequest,
        values: &mut dyn IndexValueSource,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let _ = (request, values, out);
    }

    /// [`L1Prefetcher::on_access`], collecting into a fresh `Vec`.
    fn on_access_collect(
        &mut self,
        access: Access,
        values: &mut dyn IndexValueSource,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_access(access, values, &mut out);
        out
    }

    /// [`L1Prefetcher::on_prefetch_fill`], collecting into a fresh `Vec`.
    fn on_prefetch_fill_collect(
        &mut self,
        request: PrefetchRequest,
        values: &mut dyn IndexValueSource,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_prefetch_fill(request, values, &mut out);
        out
    }

    /// Notifies that the L1 evicted `line` (feeds the Granularity
    /// Predictor's sampling).
    fn on_eviction(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// Observes a demand access for granularity sampling (which sectors
    /// of `line` the demand touched).
    fn on_demand_touch(&mut self, line: LineAddr, sectors: SectorMask) {
        let _ = (line, sectors);
    }

    /// Statistics snapshot.
    fn stats(&self) -> &PrefetcherStats;
}

/// A prefetcher that never prefetches.
#[derive(Debug, Default)]
pub struct NullPrefetcher {
    stats: PrefetcherStats,
}

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl L1Prefetcher for NullPrefetcher {
    fn on_access(
        &mut self,
        _access: Access,
        _values: &mut dyn IndexValueSource,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_source_roundtrip() {
        let mut s = MapValueSource::new();
        s.insert(Addr::new(0x10), 4, 99);
        assert_eq!(s.read_value(Addr::new(0x10), 4), Some(99));
        assert_eq!(s.read_value(Addr::new(0x10), 8), None);
        assert_eq!(s.read_value(Addr::new(0x14), 4), None);
    }

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher::new();
        let mut s = MapValueSource::new();
        let reqs = p.on_access_collect(Access::load_miss(Pc::new(1), Addr::new(64), 8), &mut s);
        assert!(reqs.is_empty());
        assert_eq!(p.stats().stream_prefetches, 0);
    }

    #[test]
    fn request_line_is_derived_from_addr() {
        let r = PrefetchRequest {
            pc: Pc::new(0),
            addr: Addr::new(0x1238),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Stream,
        };
        assert_eq!(r.line(), LineAddr::containing(Addr::new(0x1200)));
    }

    #[test]
    fn only_indirect_requests_want_translation_prefetch() {
        let mut r = PrefetchRequest {
            pc: Pc::new(0),
            addr: Addr::new(0x1238),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Stream,
        };
        assert!(!r.wants_translation_prefetch());
        r.kind = PrefetchKind::Indirect { pt: 3 };
        assert!(r.wants_translation_prefetch());
    }
}
