//! The Indirect Memory Prefetcher (IMP) and its baselines.
//!
//! This crate is the paper's primary contribution (Section 3), implemented
//! as pure, simulator-agnostic hardware models:
//!
//! * [`StreamPrefetcher`] — the baseline per-L1 stream prefetcher
//!   (PC-associated, word granularity), also embedded inside IMP as the
//!   Stream Table half of the Prefetch Table (Figure 5).
//! * [`Ipd`] — the Indirect Pattern Detector (Figure 4): pairs index
//!   values with nearby cache misses and solves `addr = (idx << shift) +
//!   base` for the shift/base of an indirect pattern.
//! * [`Imp`] — the full prefetcher: Prefetch Table with stream + indirect
//!   halves, confidence ramp-up, linear prefetch-distance ramp, nested-loop
//!   PC re-association (Section 3.3.1), multi-way and multi-level
//!   secondary indirections (Section 3.3.2), and the partial-cacheline
//!   Granularity Predictor (Section 4.2).
//! * [`Ghb`] — a Global History Buffer address-correlation prefetcher
//!   (the Section 5.4 comparison point).
//! * [`Hybrid`] — a combinator that runs several prefetchers side by
//!   side and arbitrates their requests per PC.
//! * [`registry`] — the prefetcher plugin registry: a string-keyed
//!   factory table the simulator resolves `PrefetcherSpec`s against, so
//!   custom prefetchers plug in without touching `imp-sim`.
//! * [`cost`] — the storage-cost arithmetic of Section 6.4.
//!
//! Prefetchers observe the L1 access/miss stream as [`Access`] records
//! and emit [`PrefetchRequest`]s through a [`PrefetchCtx`] — the
//! caller-owned output buffer, the triggering PC and access class, an
//! [`IndexValueSource`] for index reads (the full simulator backs it
//! with functional memory gated on L1 presence, as hardware reads the
//! value out of the cache), and an observability handle. An adaptive
//! manager can deliver epoch [`Feedback`] digests through
//! [`L1Prefetcher::on_feedback`] and apply the returned [`Control`].
//!
//! # Example: IMP learns `A[B[i]]` from a raw access stream
//!
//! ```
//! use imp_common::stats::AccessClass;
//! use imp_common::{Addr, ImpConfig, Pc};
//! use imp_obs::CoreProbe;
//! use imp_prefetch::{Access, Imp, L1Prefetcher, MapValueSource, PrefetchCtx};
//!
//! // B is u32[64] at 0x1000; A is f64[] at 0x80000; B holds scattered
//! // indices (no stride), so only indirect prefetching can capture A[B[i]].
//! let b_of = |i: u64| (i.wrapping_mul(2654435761) >> 8) % 5000;
//! let mut src = MapValueSource::new();
//! for i in 0..64u64 {
//!     src.insert(Addr::new(0x1000 + 4 * i), 4, b_of(i));
//! }
//! let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
//! let (mut reqs, probe) = (Vec::new(), CoreProbe::disabled());
//! let mut prefetched = false;
//! for i in 0..64u64 {
//!     let b = Addr::new(0x1000 + 4 * i);
//!     let a = Addr::new(0x80000 + 8 * b_of(i));
//!     for access in [
//!         Access::load_miss(Pc::new(1), b, 4),
//!         Access::load_miss(Pc::new(2), a, 8),
//!     ] {
//!         let mut ctx =
//!             PrefetchCtx::new(access.pc, AccessClass::Other, &mut src, &mut reqs, &probe);
//!         imp.on_access_ctx(access, &mut ctx);
//!     }
//!     prefetched |= !reqs.is_empty();
//!     reqs.clear();
//! }
//! assert!(imp.stats().patterns_detected >= 1);
//! assert!(prefetched);
//! ```
//!
//! # Migrating from the pre-context hooks
//!
//! Prefetchers written against the old surface — `on_access(access,
//! values, out)` / `on_prefetch_fill(request, values, out)` and the
//! `*_collect` wrappers — **keep compiling and keep working**: the new
//! `_ctx` hooks default to forwarding into the old signatures, which
//! are retained as `#[deprecated]` shims. To migrate, move each
//! override to the context form (`values` becomes `ctx.values`, `out`
//! becomes `ctx.out`) and replace `*_collect` calls with a
//! [`PrefetchCtx`] over your own buffer; implement exactly one of each
//! hook pair — the defaults forward to each other.

mod access;
pub mod cost;
mod feedback;
mod ghb;
mod gp;
mod hybrid;
mod imp;
mod ipd;
pub mod registry;
mod stream;

pub use access::{
    class_of, Access, IndexValueSource, L1Prefetcher, MapValueSource, NullPrefetcher, PrefetchCtx,
    PrefetchKind, PrefetchRequest, PrefetcherStats,
};
pub use feedback::{Control, Feedback};
pub use ghb::Ghb;
pub use gp::{Gp, GpDecision};
pub use hybrid::Hybrid;
pub use imp::{Imp, IndType};
pub use ipd::{Ipd, IpdOutcome};
pub use registry::{BuildCtx, PrefetcherFactory, Registry, RegistryError};
pub use stream::{shift_apply, StreamEntry, StreamEvent, StreamPrefetcher, StreamTable};
