//! The Indirect Memory Prefetcher (Section 3), assembled from the
//! Prefetch Table (stream + indirect halves), the Indirect Pattern
//! Detector, the shift-based address generator and the Granularity
//! Predictor.

use crate::access::{
    Access, L1Prefetcher, PrefetchCtx, PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use crate::gp::{Gp, GpDecision};
use crate::ipd::{Detection, Ipd, IpdOutcome};
use crate::stream::{shift_apply, StreamEvent, StreamTable};
use imp_common::{Addr, ImpConfig, LineAddr, SectorMask};

/// Role of an indirect pattern in a pattern tree (Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndType {
    /// The default `A[B[i]]` pattern rooted at an index stream.
    #[default]
    Primary,
    /// A second data array indexed by the same index values
    /// (`load A[B[i]]; load C[B[i]]`, Listing 2).
    SecondWay,
    /// A pattern whose index values are produced by the parent's
    /// indirect accesses (`load A[B[C[i]]]`, Listing 3).
    SecondLevel,
}

/// Detection sub-slot per PT entry, encoded into the IPD owner id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DetectKind {
    Primary,
    Way,
    Level,
}

fn owner_of(slot: usize, kind: DetectKind) -> u32 {
    (slot as u32) * 3
        + match kind {
            DetectKind::Primary => 0,
            DetectKind::Way => 1,
            DetectKind::Level => 2,
        }
}

fn decode_owner(owner: u32) -> (usize, DetectKind) {
    let slot = (owner / 3) as usize;
    let kind = match owner % 3 {
        0 => DetectKind::Primary,
        1 => DetectKind::Way,
        _ => DetectKind::Level,
    };
    (slot, kind)
}

/// The indirect half of one Prefetch Table entry (Figures 5 and 6).
#[derive(Clone, Debug, Default)]
struct IndirectPattern {
    enabled: bool,
    shift: i8,
    base: u64,
    /// Saturating confidence counter (`hit cnt` in Figure 5).
    hit_cnt: u32,
    /// Confidence threshold reached; prefetching is active.
    prefetching: bool,
    /// Current prefetch distance (ramps linearly to the max).
    distance: u32,
    /// The pattern's demand accesses include writes: prefetch Exclusive.
    writes: bool,
    /// Role in the pattern tree.
    ind_type: IndType,
    /// Chain hop of this pattern's data array: 1 for `A[B[i]]`, 2 for
    /// the level below it, and so on. Way siblings share their parent's
    /// hop.
    hop: u8,
    /// Child pattern indexed by the same values (multi-way).
    next_way: Option<usize>,
    /// Child pattern indexed by this pattern's loaded values
    /// (multi-level).
    next_level: Option<usize>,
    /// Parent pattern for secondary entries.
    prev: Option<usize>,
    /// How many ways/levels already hang off this entry.
    ways: usize,
    levels: usize,
    /// Consecutive index accesses whose expected indirect address never
    /// appeared. A long streak retires the pattern (e.g. PageRank's
    /// rank-buffer swap changes BaseAddr between iterations).
    miss_streak: u32,
}

/// Exponential back-off state for failed IPD detections (Section 3.2.2).
#[derive(Clone, Debug)]
struct Backoff {
    /// Index accesses to skip before the next attempt.
    wait: u32,
    /// Next back-off period on failure.
    next: u32,
}

impl Backoff {
    fn new(initial: u32) -> Self {
        Backoff {
            wait: 0,
            next: initial,
        }
    }

    fn ready(&self) -> bool {
        self.wait == 0
    }

    fn tick(&mut self) {
        self.wait = self.wait.saturating_sub(1);
    }

    fn fail(&mut self) {
        self.wait = self.next;
        // Exponential back-off, capped so stable-but-sparse patterns
        // (e.g. a mostly-cache-resident target array) are still
        // eventually detected.
        self.next = self.next.saturating_mul(2).min(4096);
    }
}

/// An indirect prefetch whose index value was not yet readable; retried
/// when the index line fills.
#[derive(Clone, Copy, Debug)]
struct Deferred {
    slot: usize,
    index_addr: Addr,
    size: u32,
}

const MAX_DEFERRED: usize = 512;

/// Sentinel in [`Imp::pending`]: no expected line for this slot.
const NO_PENDING: u64 = u64::MAX;

/// The full IMP prefetcher attached to one L1 data cache.
#[derive(Debug)]
pub struct Imp {
    cfg: ImpConfig,
    partial: bool,
    /// Maximum chained-indirection depth. Data prefetches chase up to
    /// `depth + 1` hops; translation prefetching walks one hop further
    /// still. The default of 1 reproduces the paper's detector exactly:
    /// a primary pattern plus one fill-time level child.
    depth: u8,
    table: StreamTable,
    ind: Vec<IndirectPattern>,
    /// `pending[slot]`: line number expected to be accessed for the
    /// slot's most recent index value, or [`NO_PENDING`]. Kept as a flat
    /// array so the per-access expectation scan touches a few cache
    /// lines instead of walking the full pattern structs.
    pending: Vec<u64>,
    backoff: Vec<Backoff>,
    ipd: Ipd,
    gp: Gp,
    deferred: Vec<Deferred>,
    stats: PrefetcherStats,
}

impl Imp {
    /// Creates an IMP with the given configuration; `partial` enables the
    /// Granularity Predictor for sub-line prefetches (Section 4).
    pub fn new(cfg: ImpConfig, partial: bool, seed: u64) -> Self {
        let pt = cfg.pt_entries;
        Imp {
            partial,
            depth: 1,
            table: StreamTable::new(pt, cfg.stream_threshold, cfg.stream_distance),
            ind: vec![IndirectPattern::default(); pt],
            pending: vec![NO_PENDING; pt],
            backoff: vec![Backoff::new(cfg.detect_backoff_initial); pt],
            ipd: Ipd::new(cfg.ipd_entries, cfg.shifts.clone(), cfg.baseaddr_array_len),
            gp: Gp::new(pt, cfg.gp_samples, seed),
            deferred: Vec::new(),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    /// The configured maximum prefetch distance (for harness reporting).
    pub fn max_distance(&self) -> u32 {
        self.cfg.max_prefetch_distance
    }

    /// Sets the chained-indirection depth (clamped to at least 1). Data
    /// prefetches chase up to `depth + 1` hops and the frontier hop is
    /// chased translation-only; `depth = 1` is bit-identical to the
    /// single-level detector.
    pub fn with_depth(mut self, depth: u8) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// The configured chained-indirection depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of currently enabled indirect patterns.
    pub fn enabled_patterns(&self) -> usize {
        self.ind.iter().filter(|p| p.enabled).count()
    }

    /// The pattern parameters of PT slot `i`, if enabled:
    /// `(shift, base, type)`.
    pub fn pattern(&self, i: usize) -> Option<(i8, u64, IndType)> {
        let p = &self.ind[i];
        p.enabled.then_some((p.shift, p.base, p.ind_type))
    }

    /// Clears a pattern and its whole way/level subtree. At depth 1 the
    /// tree is at most one level deep and children never own detection
    /// state, so only the patterns themselves are cleared (the original
    /// behaviour); at depth >= 2 descendants may hold IPD sub-slots,
    /// back-off state and deferred retries of their own, which must be
    /// released with them.
    fn clear_subtree(&mut self, slot: usize) {
        let (next_way, next_level) = (self.ind[slot].next_way, self.ind[slot].next_level);
        for child in [next_way, next_level].into_iter().flatten() {
            self.clear_subtree(child);
        }
        self.ind[slot] = IndirectPattern::default();
        self.pending[slot] = NO_PENDING;
        if self.depth >= 2 {
            self.backoff[slot] = Backoff::new(self.cfg.detect_backoff_initial);
            for k in [DetectKind::Primary, DetectKind::Way, DetectKind::Level] {
                self.ipd.release(owner_of(slot, k));
            }
            self.gp.reset_entry(slot);
            self.deferred.retain(|d| d.slot != slot);
        }
    }

    fn reset_slot(&mut self, slot: usize) {
        // Unlink children and any parent pointing here.
        let (next_way, next_level) = (self.ind[slot].next_way, self.ind[slot].next_level);
        for child in [next_way, next_level].into_iter().flatten() {
            self.clear_subtree(child);
        }
        for p in &mut self.ind {
            if p.next_way == Some(slot) {
                p.next_way = None;
                p.ways = p.ways.saturating_sub(1);
            }
            if p.next_level == Some(slot) {
                p.next_level = None;
                p.levels = p.levels.saturating_sub(1);
            }
        }
        self.ind[slot] = IndirectPattern::default();
        self.pending[slot] = NO_PENDING;
        self.backoff[slot] = Backoff::new(self.cfg.detect_backoff_initial);
        for k in [DetectKind::Primary, DetectKind::Way, DetectKind::Level] {
            self.ipd.release(owner_of(slot, k));
        }
        self.gp.reset_entry(slot);
        self.deferred.retain(|d| d.slot != slot);
    }

    fn install(&mut self, det: Detection) {
        let (slot, kind) = decode_owner(det.owner);
        match kind {
            DetectKind::Primary => {
                self.pending[slot] = NO_PENDING;
                let p = &mut self.ind[slot];
                p.enabled = true;
                p.shift = det.shift;
                p.base = det.base;
                p.hit_cnt = 0;
                p.prefetching = false;
                p.distance = 1;
                p.ind_type = IndType::Primary;
                p.hop = 1;
                self.gp.reset_entry(slot);
                self.stats.patterns_detected += 1;
            }
            DetectKind::Way | DetectKind::Level => {
                // A secondary pattern never links to itself or its parent.
                let protected = |i: usize| i == slot || self.ind[i].prev == Some(slot);
                let Some(child) = self.table.alloc_detached(protected) else {
                    return;
                };
                if child == slot {
                    return;
                }
                self.reset_slot(child);
                let parent_hop = self.ind[slot].hop.max(1);
                let p = &mut self.ind[child];
                p.enabled = true;
                p.shift = det.shift;
                p.base = det.base;
                p.prefetching = true; // confidence rides on the parent
                p.distance = 1;
                p.prev = Some(slot);
                p.ind_type = if kind == DetectKind::Way {
                    IndType::SecondWay
                } else {
                    IndType::SecondLevel
                };
                p.hop = if kind == DetectKind::Way {
                    parent_hop
                } else {
                    parent_hop.saturating_add(1)
                };
                if kind == DetectKind::Way {
                    self.ind[slot].next_way = Some(child);
                    self.ind[slot].ways += 1;
                    self.stats.ways_detected += 1;
                } else {
                    self.ind[slot].next_level = Some(child);
                    self.ind[slot].levels += 1;
                    self.stats.levels_detected += 1;
                }
                self.gp.reset_entry(child);
                self.stats.patterns_detected += 1;
            }
        }
    }

    /// Element size (bytes) loaded by a pattern, derived from its
    /// coefficient; used when reading a value for multi-level chaining.
    fn value_read_size(shift: i8) -> u32 {
        match shift {
            2 => 4,
            3 => 8,
            s if s >= 4 => 8,
            _ => 1, // bit-vector patterns load bytes
        }
    }

    /// Pushes the prefetch request(s) for `slot` given index value `v`
    /// onto `out`: the pattern's own target plus all second-way children
    /// (which share the index value, Section 3.3.2).
    fn requests_for_value(&mut self, slot: usize, v: u64, out: &mut Vec<PrefetchRequest>) {
        let mut cur = Some(slot);
        while let Some(s) = cur {
            let p = &self.ind[s];
            if !p.enabled {
                break;
            }
            let target = Addr::new(shift_apply(v, p.shift).wrapping_add(p.base));
            let sectors = if self.partial {
                match self.gp.decision(s) {
                    GpDecision::FullLine => SectorMask::FULL_L1,
                    GpDecision::Partial { sectors } => {
                        SectorMask::l1_granule_around(target, sectors)
                    }
                }
            } else {
                SectorMask::FULL_L1
            };
            if sectors != SectorMask::FULL_L1 {
                self.stats.partial_prefetches += 1;
            }
            out.push(PrefetchRequest {
                pc: self.table.entry(s).pc,
                addr: target,
                sectors,
                exclusive: p.writes,
                kind: PrefetchKind::Indirect {
                    pt: s,
                    hop: p.hop.max(1),
                },
            });
            self.stats.indirect_prefetches += 1;
            self.gp
                .on_indirect_prefetch(s, LineAddr::containing(target));
            self.table.touch(s);
            cur = p.next_way;
        }
    }

    /// Confidence bookkeeping: does `access` hit the expected indirect
    /// address of any enabled pattern? Returns the first matching slot.
    /// The scan runs over the flat `pending` array (one word per slot)
    /// so non-matching accesses — the overwhelming majority — never
    /// touch the pattern structs.
    fn match_expected(&mut self, access: &Access) -> Option<usize> {
        let line = LineAddr::containing(access.addr).number();
        let mut matched = None;
        for i in 0..self.pending.len() {
            if self.pending[i] == line && self.ind[i].enabled {
                let p = &mut self.ind[i];
                p.hit_cnt = (p.hit_cnt + 1).min(self.cfg.confidence_max);
                self.pending[i] = NO_PENDING;
                p.miss_streak = 0;
                if access.is_write {
                    p.writes = true;
                }
                if matched.is_none() {
                    matched = Some(i);
                }
            }
        }
        matched
    }

    /// Retires a pattern whose expectations stopped matching, freeing
    /// the slot for the IPD to re-learn (the stream half is preserved).
    fn retire_pattern(&mut self, slot: usize) {
        let (next_way, next_level) = (self.ind[slot].next_way, self.ind[slot].next_level);
        for child in [next_way, next_level].into_iter().flatten() {
            self.clear_subtree(child);
        }
        self.ind[slot] = IndirectPattern::default();
        self.pending[slot] = NO_PENDING;
        self.backoff[slot] = Backoff::new(self.cfg.detect_backoff_initial);
        for k in [DetectKind::Primary, DetectKind::Way, DetectKind::Level] {
            self.ipd.release(owner_of(slot, k));
        }
        self.deferred.retain(|d| d.slot != slot);
    }
}

impl L1Prefetcher for Imp {
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        let values = &mut *ctx.values;
        let reqs = &mut *ctx.out;
        // 1. Check enabled patterns' expected indirect addresses
        //    (confidence counting, Section 3.2.3) and remember whether
        //    this access is explained by a known pattern.
        let matched = self.match_expected(&access);

        // 2. Multi-level detection: an access matching pattern `s` loads
        //    a value that may index a deeper array (Listing 3). Feed it
        //    to the level-detection sub-slot of `s`.
        if let Some(s) = matched {
            let can_detect_level = {
                let p = &self.ind[s];
                let has_room = if self.depth == 1 {
                    p.levels < self.cfg.max_levels.saturating_sub(1)
                } else {
                    // Children are installable up to hop `depth + 2`:
                    // one hop past the data chain, chased
                    // translation-only.
                    u32::from(p.hop) <= u32::from(self.depth) + 1
                };
                p.prefetching && has_room && p.next_level.is_none()
            };
            if can_detect_level {
                let owner = owner_of(s, DetectKind::Level);
                let size = Self::value_read_size(self.ind[s].shift);
                if let Some(v2) = values.read_value(access.addr, size) {
                    if self.ipd.has_entry(owner) {
                        if self.ipd.on_index_access(owner, v2) == IpdOutcome::Failed {
                            self.stats.detect_failures += 1;
                            self.backoff[s].fail();
                        }
                    } else if self.backoff[s].ready() {
                        self.ipd.try_allocate(owner, v2);
                    } else {
                        self.backoff[s].tick();
                    }
                }
            }

            // Per-hop confidence (depth >= 2 only): the value loaded by
            // this matched access is the next index of the level child,
            // so expect the child's access and count hits and misses
            // against it — exactly the bookkeeping primary patterns get
            // from their index stream. A child whose hop stopped
            // matching (e.g. a rebuilt hash table) is retired with its
            // subtree so the IPD can re-learn it.
            if self.depth >= 2 {
                let child = self.ind[s].next_level.filter(|&l| self.ind[l].enabled);
                if let Some(l) = child {
                    let retire = {
                        let p = &mut self.ind[l];
                        if self.pending[l] != NO_PENDING {
                            p.hit_cnt = p.hit_cnt.saturating_sub(1);
                            p.miss_streak += 1;
                        }
                        p.miss_streak >= 8
                    };
                    if retire {
                        self.ind[s].next_level = None;
                        self.ind[s].levels = self.ind[s].levels.saturating_sub(1);
                        self.clear_subtree(l);
                    } else {
                        let size = Self::value_read_size(self.ind[s].shift);
                        if let Some(v2) = values.read_value(access.addr, size) {
                            let p = &self.ind[l];
                            let expected = Addr::new(shift_apply(v2, p.shift).wrapping_add(p.base));
                            self.pending[l] = LineAddr::containing(expected).number();
                        }
                    }
                }
            }
        }

        // 3. Stream table observation for this PC.
        let (slot, event) = {
            let (slot, event, stream_lines) =
                self.table.observe(access.pc, access.addr, access.size);
            self.stats.stream_prefetches += stream_lines.len() as u64;
            reqs.extend(stream_lines.iter().map(|l| PrefetchRequest {
                pc: access.pc,
                addr: l.base(),
                sectors: SectorMask::FULL_L1,
                exclusive: false,
                kind: PrefetchKind::Sequential,
            }));
            (slot, event)
        };
        if event == StreamEvent::Allocated {
            self.reset_slot(slot);
        }

        // 4. Index-stream work: detection or prefetching.
        let established = self
            .table
            .entry(slot)
            .established(self.cfg.stream_threshold);
        if established && event == StreamEvent::Continued {
            self.stats.dbg_continued += 1;
            let own_value = values.read_value(access.addr, access.size);
            if own_value.is_none() {
                self.stats.dbg_own_value_miss += 1;
            }
            if self.ind[slot].enabled {
                self.stats.dbg_enabled += 1;
                if self.ind[slot].prefetching {
                    self.stats.dbg_prefetching += 1;
                }
            }
            if let Some(value) = own_value {
                if !self.ind[slot].enabled {
                    // Primary pattern detection via the IPD.
                    let owner = owner_of(slot, DetectKind::Primary);
                    if self.ipd.has_entry(owner) {
                        if self.ipd.on_index_access(owner, value) == IpdOutcome::Failed {
                            self.stats.detect_failures += 1;
                            self.backoff[slot].fail();
                        }
                    } else if self.backoff[slot].ready() {
                        self.ipd.try_allocate(owner, value);
                    } else {
                        self.backoff[slot].tick();
                    }
                } else {
                    // Confidence: a still-pending expectation means the
                    // previous index value never saw its indirect access.
                    let threshold = self.cfg.confidence_threshold;
                    let retired = {
                        let p = &mut self.ind[slot];
                        if self.pending[slot] != NO_PENDING {
                            p.hit_cnt = p.hit_cnt.saturating_sub(1);
                            p.miss_streak += 1;
                        }
                        if p.miss_streak >= 8 {
                            true
                        } else {
                            let expected =
                                Addr::new(shift_apply(value, p.shift).wrapping_add(p.base));
                            self.pending[slot] = LineAddr::containing(expected).number();
                            if p.hit_cnt >= threshold {
                                p.prefetching = true;
                            }
                            false
                        }
                    };
                    if retired {
                        // The pattern no longer describes reality (e.g.
                        // the data array was swapped): retire it and let
                        // the IPD find the new parameters.
                        self.retire_pattern(slot);
                        if access.miss {
                            if let Some(det) = self.ipd.on_miss(access.addr) {
                                self.install(det);
                            }
                        }
                        return;
                    }

                    // Multi-way detection: look for a second array driven
                    // by this same index stream.
                    let can_detect_way = {
                        let p = &self.ind[slot];
                        p.prefetching
                            && p.ways < self.cfg.max_ways.saturating_sub(1)
                            && p.next_way.is_none()
                    };
                    if can_detect_way {
                        let owner = owner_of(slot, DetectKind::Way);
                        if self.ipd.has_entry(owner) {
                            if self.ipd.on_index_access(owner, value) == IpdOutcome::Failed {
                                self.stats.detect_failures += 1;
                                self.backoff[slot].fail();
                            }
                        } else if self.backoff[slot].ready() {
                            self.ipd.try_allocate(owner, value);
                        }
                    }

                    // Indirect prefetching at the current distance.
                    if self.ind[slot].prefetching {
                        let p = &mut self.ind[slot];
                        p.distance = (p.distance + 1).min(self.cfg.max_prefetch_distance);
                        let delta = p.distance;
                        let idx_addr = self.table.lookahead_addr(slot, delta);
                        match values.read_value(idx_addr, access.size) {
                            Some(v) => self.requests_for_value(slot, v, reqs),
                            None => {
                                // Index line not in cache yet: prefetch it
                                // and retry when it fills (Section 3.1's
                                // two-step read of B[i + delta]).
                                self.stats.value_unavailable += 1;
                                reqs.push(PrefetchRequest {
                                    pc: access.pc,
                                    addr: idx_addr,
                                    sectors: SectorMask::FULL_L1,
                                    exclusive: false,
                                    kind: PrefetchKind::Sequential,
                                });
                                self.stats.stream_prefetches += 1;
                                if self.deferred.len() < MAX_DEFERRED {
                                    self.deferred.push(Deferred {
                                        slot,
                                        index_addr: idx_addr,
                                        size: access.size,
                                    });
                                } else {
                                    self.stats.deferred_drops += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        // 5. Misses not explained by an enabled pattern feed the IPD.
        if access.miss && matched.is_none() {
            if let Some(det) = self.ipd.on_miss(access.addr) {
                self.install(det);
            }
        }
    }

    fn on_prefetch_fill_ctx(&mut self, request: PrefetchRequest, ctx: &mut PrefetchCtx<'_>) {
        let values = &mut *ctx.values;
        let out = &mut *ctx.out;
        match request.kind {
            PrefetchKind::Indirect { pt, .. } => {
                // Multi-level chaining: the filled value indexes the
                // child array (issued only now that the parent returned,
                // Section 3.3.2). At depth >= 2 this recurses hop by
                // hop as each fill returns, walking the chain ahead of
                // the demand stream; the hop one past the data frontier
                // is chased translation-only.
                if pt < self.ind.len() {
                    if let Some(l) = self.ind[pt].next_level {
                        if self.ind[l].enabled {
                            let size = Self::value_read_size(self.ind[pt].shift);
                            if let Some(v2) = values.read_value(request.addr, size) {
                                let frontier = self.depth >= 2
                                    && u32::from(self.ind[l].hop) == u32::from(self.depth) + 2;
                                if frontier {
                                    let p = &self.ind[l];
                                    let target =
                                        Addr::new(shift_apply(v2, p.shift).wrapping_add(p.base));
                                    out.push(PrefetchRequest {
                                        pc: self.table.entry(l).pc,
                                        addr: target,
                                        sectors: SectorMask::FULL_L1,
                                        exclusive: false,
                                        kind: PrefetchKind::TranslationOnly { hop: p.hop },
                                    });
                                    self.stats.translation_ahead += 1;
                                    self.table.touch(l);
                                } else {
                                    self.requests_for_value(l, v2, out);
                                }
                            }
                        }
                    }
                }
            }
            PrefetchKind::TranslationOnly { .. } => {
                // Translation-only requests carry no data; nothing to
                // chain from them.
            }
            PrefetchKind::Sequential => {
                // Retry deferred indirect prefetches whose index line
                // just arrived. The deferral list is short and filtered
                // in place; the common case (no match) touches no heap.
                let filled = request.line();
                let mut i = 0;
                while i < self.deferred.len() {
                    if LineAddr::containing(self.deferred[i].index_addr) == filled {
                        let d = self.deferred.remove(i);
                        if self.ind[d.slot].enabled && self.ind[d.slot].prefetching {
                            if let Some(v) = values.read_value(d.index_addr, d.size) {
                                self.stats.deferred_retries += 1;
                                self.requests_for_value(d.slot, v, out);
                            }
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    fn on_eviction(&mut self, line: LineAddr) {
        self.gp.on_eviction(line);
    }

    fn on_demand_touch(&mut self, line: LineAddr, sectors: SectorMask) {
        self.gp.on_demand_touch(line, sectors);
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shim surface must keep working; exercising it here
    // keeps it covered.
    #![allow(deprecated)]

    use super::*;
    use crate::access::MapValueSource;
    use imp_common::Pc;

    /// Builds a value source for `B[i] = perm(i)` as u32 at `b_base`.
    fn index_array(b_base: u64, values: &[u64]) -> MapValueSource {
        let mut src = MapValueSource::new();
        for (i, &v) in values.iter().enumerate() {
            src.insert(Addr::new(b_base + 4 * i as u64), 4, v);
        }
        src
    }

    /// Drives `imp` through the canonical loop `load B[i]; load A[B[i]]`
    /// with 8-byte elements of A, returning all emitted requests.
    fn drive_a_of_b(
        imp: &mut Imp,
        src: &mut MapValueSource,
        b_base: u64,
        a_base: u64,
        values: &[u64],
        all_miss: bool,
    ) -> Vec<PrefetchRequest> {
        let mut reqs = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let b_addr = Addr::new(b_base + 4 * i as u64);
            let a_addr = Addr::new(a_base + 8 * v);
            reqs.extend(imp.on_access_collect(
                if all_miss {
                    Access::load_miss(Pc::new(1), b_addr, 4)
                } else {
                    Access::load_hit(Pc::new(1), b_addr, 4)
                },
                src,
            ));
            reqs.extend(imp.on_access_collect(Access::load_miss(Pc::new(2), a_addr, 8), src));
        }
        reqs
    }

    #[test]
    fn detects_and_prefetches_primary_pattern() {
        let values: Vec<u64> = (0..64).map(|i| (i * 37) % 1000).collect();
        let b_base = 0x10000u64;
        let a_base = 0x200000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let reqs = drive_a_of_b(&mut imp, &mut src, b_base, a_base, &values, false);

        assert_eq!(imp.stats().patterns_detected, 1);
        let indirect: Vec<_> = reqs
            .iter()
            .filter(|r| matches!(r.kind, PrefetchKind::Indirect { .. }))
            .collect();
        assert!(!indirect.is_empty(), "indirect prefetches issued");
        // Every indirect prefetch targets a legitimate future A[B[j]].
        for r in &indirect {
            let off = r.addr.raw() - a_base;
            assert_eq!(off % 8, 0);
            assert!(
                values.contains(&(off / 8)),
                "target {off:#x} is a real A[B[j]]"
            );
        }
    }

    #[test]
    fn detected_parameters_match_planted_pattern() {
        let values: Vec<u64> = (0..32).map(|i| (i * 13 + 5) % 500).collect();
        let b_base = 0x40000u64;
        let a_base = 0x900000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        drive_a_of_b(&mut imp, &mut src, b_base, a_base, &values, false);
        let found = (0..16)
            .find_map(|i| imp.pattern(i))
            .expect("a pattern is enabled");
        assert_eq!(found.0, 3, "shift 3 = 8-byte elements");
        assert_eq!(found.1, a_base);
        assert_eq!(found.2, IndType::Primary);
    }

    #[test]
    fn prefetch_distance_ramps_to_max() {
        let values: Vec<u64> = (0..200).map(|i| (i * 7) % 3000).collect();
        let b_base = 0x10000u64;
        let a_base = 0x500000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let reqs = drive_a_of_b(&mut imp, &mut src, b_base, a_base, &values, false);
        // Late in the run, prefetches must land max_distance ahead: the
        // last indirect request corresponds to B[i + 16].
        let last = reqs
            .iter()
            .rev()
            .find(|r| matches!(r.kind, PrefetchKind::Indirect { .. }))
            .expect("indirect prefetches");
        let target_j = (last.addr.raw() - a_base) / 8;
        let pos = values.iter().position(|&v| v == target_j).unwrap();
        assert!(
            pos >= 199_usize.saturating_sub(1) || pos + 16 >= 199,
            "last prefetch is far ahead (pos {pos})"
        );
    }

    #[test]
    fn no_pattern_no_indirect_prefetches() {
        // Random unrelated loads: IMP must stay quiet (the SPLASH-2
        // no-harm claim of Section 6.1).
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut src = MapValueSource::new();
        let mut reqs = Vec::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = Addr::new(0x100000 + (x % 100_000) * 8);
            src.insert(addr, 8, x);
            reqs.extend(imp.on_access_collect(Access::load_miss(Pc::new(9), addr, 8), &mut src));
        }
        assert_eq!(imp.stats().indirect_prefetches, 0);
        assert_eq!(imp.stats().patterns_detected, 0);
    }

    #[test]
    fn multiway_detection_links_second_array() {
        // load A[B[i]]; load C[B[i]] — pagerank's pr/deg pair.
        let values: Vec<u64> = (0..128).map(|i| (i * 29) % 2000).collect();
        let b_base = 0x10000u64;
        let a_base = 0x2_000_000u64;
        let c_base = 0x4_000_000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        for (i, &v) in values.iter().enumerate() {
            let b_addr = Addr::new(b_base + 4 * i as u64);
            imp.on_access_collect(Access::load_hit(Pc::new(1), b_addr, 4), &mut src);
            imp.on_access_collect(
                Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * v), 8),
                &mut src,
            );
            imp.on_access_collect(
                Access::load_miss(Pc::new(3), Addr::new(c_base + 4 * v), 4),
                &mut src,
            );
        }
        assert!(imp.stats().ways_detected >= 1, "second way detected");
        // Both bases appear among enabled patterns.
        let bases: Vec<u64> = (0..16)
            .filter_map(|i| imp.pattern(i))
            .map(|p| p.1)
            .collect();
        assert!(bases.contains(&a_base));
        assert!(bases.contains(&c_base));
    }

    #[test]
    fn multilevel_prefetch_chains_on_fill() {
        // load A[B[C[i]]]: C stream, B = first-level array (u32),
        // A = second-level data (f64). C's values must NOT be arithmetic,
        // otherwise B[C[i]] is itself a stream and A would be captured as
        // a primary pattern instead of a second level.
        let c_base = 0x10000u64;
        let b_base = 0x1_000_000u64;
        let a_base = 0x8_000_000u64;
        let c_vals: Vec<u64> = (0..160u64)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) % 4000)
            .collect();
        let mut src = MapValueSource::new();
        let b_of = |c: u64| (c.wrapping_mul(40503) >> 3) % 3000;
        for (i, &c) in c_vals.iter().enumerate() {
            src.insert(Addr::new(c_base + 4 * i as u64), 4, c);
            src.insert(Addr::new(b_base + 4 * c), 4, b_of(c));
        }
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut fills: Vec<PrefetchRequest> = Vec::new();
        let mut chained = Vec::new();
        for (i, &c) in c_vals.iter().enumerate() {
            let mut reqs = Vec::new();
            reqs.extend(imp.on_access_collect(
                Access::load_hit(Pc::new(1), Addr::new(c_base + 4 * i as u64), 4),
                &mut src,
            ));
            reqs.extend(imp.on_access_collect(
                Access::load_miss(Pc::new(2), Addr::new(b_base + 4 * c), 4),
                &mut src,
            ));
            reqs.extend(imp.on_access_collect(
                Access::load_miss(Pc::new(3), Addr::new(a_base + 8 * b_of(c)), 8),
                &mut src,
            ));
            // Simulate fills completing promptly.
            for r in reqs.drain(..) {
                fills.push(r);
            }
            for f in fills.drain(..) {
                chained.extend(imp.on_prefetch_fill_collect(f, &mut src));
            }
        }
        assert!(imp.stats().levels_detected >= 1, "second level detected");
        assert!(
            chained.iter().any(|r| r.addr.raw() >= a_base),
            "chained prefetches into the level-2 array"
        );
    }

    #[test]
    fn deferred_prefetch_retries_after_index_line_fill() {
        let values: Vec<u64> = (0..64).map(|i| (i * 23) % 900).collect();
        let b_base = 0x10000u64;
        let a_base = 0x300000u64;
        // Only populate the first 32 index values: lookahead reads past
        // them return None, forcing deferral.
        let mut src = index_array(b_base, &values[..32]);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut deferred_stream_req = None;
        for (i, &v) in values[..32].iter().enumerate() {
            let b_addr = Addr::new(b_base + 4 * i as u64);
            let a_addr = Addr::new(a_base + 8 * v);
            for r in imp.on_access_collect(Access::load_hit(Pc::new(1), b_addr, 4), &mut src) {
                if r.kind == PrefetchKind::Sequential && r.addr.raw() >= b_base + 4 * 32 {
                    deferred_stream_req = Some(r);
                }
            }
            imp.on_access_collect(Access::load_miss(Pc::new(2), a_addr, 8), &mut src);
        }
        let req = deferred_stream_req.expect("IMP prefetched the missing index line");
        // Now the index values "arrive": populate and signal the fill.
        for (i, &v) in values.iter().enumerate() {
            src.insert(Addr::new(b_base + 4 * i as u64), 4, v);
        }
        let chained = imp.on_prefetch_fill_collect(req, &mut src);
        assert!(
            chained
                .iter()
                .any(|r| matches!(r.kind, PrefetchKind::Indirect { .. })),
            "deferred indirect prefetch issued after the index line filled"
        );
    }

    #[test]
    fn write_pattern_prefetches_exclusive() {
        // SymGS-style: the indirect accesses are stores.
        let values: Vec<u64> = (0..64).map(|i| (i * 31) % 1200).collect();
        let b_base = 0x20000u64;
        let a_base = 0x600000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut reqs = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let b_addr = Addr::new(b_base + 4 * i as u64);
            let a_addr = Addr::new(a_base + 8 * v);
            reqs.extend(imp.on_access_collect(Access::load_hit(Pc::new(1), b_addr, 4), &mut src));
            reqs.extend(
                imp.on_access_collect(Access::store(Pc::new(2), a_addr, 8, true), &mut src),
            );
        }
        let last_indirect = reqs
            .iter()
            .rev()
            .find(|r| matches!(r.kind, PrefetchKind::Indirect { .. }))
            .expect("indirect prefetches issued");
        assert!(
            last_indirect.exclusive,
            "read/write predictor marks the pattern as writing"
        );
    }

    #[test]
    fn backoff_doubles_after_failures() {
        // A stream whose "indirect" accesses never correlate: detection
        // keeps failing, and attempts must become rarer.
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut src = MapValueSource::new();
        let mut x = 99u64;
        for i in 0..4096u64 {
            let b_addr = Addr::new(0x10000 + 4 * i);
            src.insert(b_addr, 4, i);
            imp.on_access_collect(Access::load_hit(Pc::new(1), b_addr, 4), &mut src);
            // Random misses decorrelated from i.
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            imp.on_access_collect(
                Access::load_miss(Pc::new(2), Addr::new(0x40_000_000 + (x % (1 << 22))), 8),
                &mut src,
            );
        }
        let f = imp.stats().detect_failures;
        assert!(f >= 2, "detection attempted and failed (failures = {f})");
        // With exponential back-off, failures grow logarithmically, not
        // linearly with the number of index accesses.
        assert!(
            f <= 16,
            "back-off bounds detection attempts (failures = {f})"
        );
        assert_eq!(imp.stats().indirect_prefetches, 0);
    }

    #[test]
    fn partial_mode_consults_granularity_predictor() {
        let values: Vec<u64> = (0..512).map(|i| (i * 97) % 20_000).collect();
        let b_base = 0x10000u64;
        let a_base = 0x10_000_000u64;
        let mut src = index_array(b_base, &values);
        let mut imp = Imp::new(ImpConfig::paper_default(), true, 42);
        for (i, &v) in values.iter().enumerate() {
            let b_addr = Addr::new(b_base + 4 * i as u64);
            let a_addr = Addr::new(a_base + 8 * v);
            let reqs = imp.on_access_collect(Access::load_hit(Pc::new(1), b_addr, 4), &mut src);
            imp.on_access_collect(Access::load_miss(Pc::new(2), a_addr, 8), &mut src);
            // Feed the GP: every prefetched line gets exactly one sector
            // touched, then evicted.
            for r in reqs {
                if let PrefetchKind::Indirect { .. } = r.kind {
                    imp.on_demand_touch(r.line(), SectorMask::l1_touch(r.addr, 8));
                    imp.on_eviction(r.line());
                }
            }
        }
        assert!(
            imp.stats().partial_prefetches > 0,
            "GP converged to sub-line prefetches: {:?}",
            imp.stats()
        );
    }

    /// Populates an n-table pointer chain rooted at a u32 index stream:
    /// `T1[T0[i]]`, `T2[T1[T0[i]]]`, ... with hashed (non-arithmetic)
    /// indices so deeper hops cannot masquerade as streams.
    fn chain_src(bases: &[u64], iters: u64) -> (MapValueSource, Vec<Vec<Addr>>) {
        let n = 4000u64;
        let h = |x: u64, salt: u64| (x.wrapping_mul(2654435761).wrapping_add(salt) >> 5) % n;
        let mut src = MapValueSource::new();
        let mut per_iter = Vec::new();
        for i in 0..iters {
            let mut addrs = Vec::new();
            let mut v = h(i, 0xA5);
            src.insert(Addr::new(bases[0] + 4 * i), 4, v);
            for (k, &b) in bases.iter().enumerate().skip(1) {
                let addr = Addr::new(b + 8 * v);
                v = h(v, 0xC3 + k as u64);
                src.insert(addr, 8, v);
                addrs.push(addr);
            }
            per_iter.push(addrs);
        }
        (src, per_iter)
    }

    /// Drives `imp` through the chain, completing every data prefetch
    /// fill promptly so multi-hop chaining can progress, and returns
    /// all emitted requests.
    fn drive_chain(imp: &mut Imp, bases: &[u64], iters: u64) -> Vec<PrefetchRequest> {
        let (mut src, per_iter) = chain_src(bases, iters);
        let mut all = Vec::new();
        for i in 0..iters {
            let mut queue: Vec<PrefetchRequest> = Vec::new();
            queue.extend(imp.on_access_collect(
                Access::load_hit(Pc::new(1), Addr::new(bases[0] + 4 * i), 4),
                &mut src,
            ));
            for (k, &addr) in per_iter[i as usize].iter().enumerate() {
                queue.extend(imp.on_access_collect(
                    Access::load_miss(Pc::new(2 + k as u32), addr, 8),
                    &mut src,
                ));
            }
            while let Some(r) = queue.pop() {
                all.push(r);
                if !r.kind.is_translation_only() {
                    queue.extend(imp.on_prefetch_fill_collect(r, &mut src));
                }
            }
        }
        all
    }

    const CHAIN_BASES: [u64; 5] = [
        0x10000,
        0x1_000_000,
        0x8_000_000,
        0x20_000_000,
        0x40_000_000,
    ];

    #[test]
    fn depth_default_keeps_the_chain_two_hops() {
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let reqs = drive_chain(&mut imp, &CHAIN_BASES[..4], 400);
        assert!(
            reqs.iter().all(|r| r.kind.hop() <= 2),
            "depth 1 never chases past hop 2"
        );
        assert_eq!(imp.stats().translation_ahead, 0);
    }

    #[test]
    fn depth_two_chases_a_third_hop() {
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1).with_depth(2);
        let reqs = drive_chain(&mut imp, &CHAIN_BASES[..4], 400);
        assert!(
            imp.stats().levels_detected >= 2,
            "hop-3 pattern detected: {:?}",
            imp.stats()
        );
        let hop3: Vec<_> = reqs
            .iter()
            .filter(|r| matches!(r.kind, PrefetchKind::Indirect { hop: 3, .. }))
            .collect();
        assert!(!hop3.is_empty(), "hop-3 data prefetches issued");
        assert!(
            hop3.iter().all(|r| r.addr.raw() >= CHAIN_BASES[3]),
            "hop-3 prefetches target the fourth table"
        );
    }

    #[test]
    fn frontier_hop_is_chased_translation_only() {
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1).with_depth(2);
        let reqs = drive_chain(&mut imp, &CHAIN_BASES, 500);
        assert!(
            imp.stats().translation_ahead > 0,
            "frontier translations chased: {:?}",
            imp.stats()
        );
        assert!(reqs
            .iter()
            .any(|r| matches!(r.kind, PrefetchKind::TranslationOnly { hop: 4 })));
        // The data chain itself never runs past hop depth + 1.
        assert!(reqs
            .iter()
            .all(|r| !matches!(r.kind, PrefetchKind::Indirect { hop, .. } if hop > 3)));
    }

    #[test]
    fn pt_replacement_clears_pattern_state() {
        // Thrash the PT with more streams than entries; patterns must be
        // reclaimed without leaving dangling links (Figure 14's PT-size
        // sensitivity relies on this).
        let mut cfg = ImpConfig::paper_default();
        cfg.pt_entries = 4;
        let mut imp = Imp::new(cfg, false, 1);
        let mut src = MapValueSource::new();
        for pc in 0..16u32 {
            for i in 0..32u64 {
                let addr = Addr::new(0x10000 + u64::from(pc) * 0x10000 + 4 * i);
                src.insert(addr, 4, i);
                imp.on_access_collect(Access::load_hit(Pc::new(pc + 1), addr, 4), &mut src);
            }
        }
        assert!(imp.enabled_patterns() <= 4);
    }
}
