//! A Global History Buffer (GHB) address-correlation prefetcher
//! (Nesbit & Smith), the comparison point of Section 5.4.
//!
//! G/AC organization: an index table maps a miss address to the most
//! recent occurrence of that address in a circular history buffer; buffer
//! entries are linked to previous occurrences of the same address. On a
//! miss, the prefetcher walks to the previous occurrence and prefetches
//! the addresses that *followed it last time*.
//!
//! The paper's observation — reproduced by this model — is that with
//! realistically sized tables, sparse workloads' miss streams do not
//! repeat within the buffer, so GHB adds traffic without coverage.

use crate::access::{
    Access, L1Prefetcher, PrefetchCtx, PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use crate::stream::StreamPrefetcher;
use imp_common::{FastMap, LineAddr, SectorMask};

#[derive(Clone, Copy, Debug)]
struct GhbEntry {
    line: LineAddr,
}

/// GHB G/AC prefetcher layered over the baseline stream prefetcher
/// (as evaluated in the paper: "when attached to each L1 cache ... on top
/// of the stream prefetcher").
#[derive(Debug)]
pub struct Ghb {
    stream: StreamPrefetcher,
    buffer: Vec<GhbEntry>,
    capacity: usize,
    /// Absolute insertion count; `buffer[pos % capacity]`.
    inserted: u64,
    /// Last occurrence position of each line currently in the buffer.
    index: FastMap<LineAddr, u64>,
    /// Prefetch degree: successors fetched per correlation hit.
    degree: usize,
    stats: PrefetcherStats,
}

impl Ghb {
    /// Creates a GHB with `capacity` history entries and prefetch
    /// `degree`, over a default stream prefetcher.
    pub fn new(capacity: usize, degree: usize) -> Self {
        Ghb {
            stream: StreamPrefetcher::paper_default(),
            buffer: Vec::with_capacity(capacity),
            capacity,
            inserted: 0,
            index: FastMap::default(),
            degree,
            stats: PrefetcherStats::default(),
        }
    }

    /// A typical configuration: 512-entry buffer, degree 2.
    pub fn paper_default() -> Self {
        Self::new(512, 2)
    }

    fn oldest_live(&self) -> u64 {
        self.inserted.saturating_sub(self.buffer.len() as u64)
    }

    fn entry_at(&self, pos: u64) -> Option<&GhbEntry> {
        if pos >= self.oldest_live() && pos < self.inserted {
            Some(&self.buffer[(pos % self.capacity as u64) as usize])
        } else {
            None
        }
    }

    fn record_miss(&mut self, line: LineAddr) -> Vec<LineAddr> {
        // Correlate: find the previous occurrence and prefetch what
        // followed it.
        let mut out = Vec::new();
        if let Some(&prev_pos) = self.index.get(&line) {
            if self.entry_at(prev_pos).is_some() {
                for k in 1..=self.degree as u64 {
                    if let Some(e) = self.entry_at(prev_pos + k) {
                        out.push(e.line);
                    }
                }
            }
        }
        // Insert the new occurrence (the index table holds the link to
        // the most recent prior occurrence).
        let pos = self.inserted;
        self.index.insert(line, pos);
        let entry = GhbEntry { line };
        if self.buffer.len() < self.capacity {
            self.buffer.push(entry);
        } else {
            let slot = (pos % self.capacity as u64) as usize;
            let evicted = self.buffer[slot];
            // Drop the index entry if it still points at the evicted slot.
            if self.index.get(&evicted.line) == Some(&(pos - self.capacity as u64)) {
                self.index.remove(&evicted.line);
            }
            self.buffer[slot] = entry;
        }
        self.inserted += 1;
        out
    }
}

impl L1Prefetcher for Ghb {
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        self.stream.on_access_ctx(access, ctx);
        self.stats.stream_prefetches = self.stream.stats().stream_prefetches;
        if access.miss {
            for line in self.record_miss(LineAddr::containing(access.addr)) {
                self.stats.indirect_prefetches += 1; // correlation prefetches
                ctx.out.push(PrefetchRequest {
                    pc: access.pc,
                    addr: line.base(),
                    sectors: SectorMask::FULL_L1,
                    exclusive: false,
                    kind: PrefetchKind::Sequential,
                });
            }
        }
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shim surface must keep working; exercising it here
    // keeps it covered.
    #![allow(deprecated)]

    use super::*;
    use crate::access::MapValueSource;
    use imp_common::{Addr, Pc};

    fn miss(addr: u64) -> Access {
        Access::load_miss(Pc::new(1), Addr::new(addr), 8)
    }

    #[test]
    fn repeating_miss_stream_is_prefetched() {
        let mut g = Ghb::new(64, 2);
        let mut v = MapValueSource::new();
        let pattern = [0x1000u64, 0x9000, 0x3000, 0xF000, 0x5000];
        // First pass trains; second pass should correlate.
        let mut correlated = 0;
        for pass in 0..2 {
            for &a in &pattern {
                let reqs = g.on_access_collect(miss(a), &mut v);
                if pass == 1 {
                    correlated += reqs.len();
                }
            }
        }
        assert!(
            correlated > 0,
            "second pass triggers correlation prefetches"
        );
    }

    #[test]
    fn non_repeating_stream_stays_quiet() {
        let mut g = Ghb::new(64, 2);
        let mut v = MapValueSource::new();
        let mut total = 0;
        for i in 0..1000u64 {
            // Strictly fresh miss addresses, far apart (beyond stream
            // prefetcher interest: random page-sized jumps).
            let a = 0x100000 + i * 8192 + (i * i) % 64;
            total += g
                .on_access_collect(miss(a), &mut v)
                .iter()
                .filter(|r| r.addr.raw() != a)
                .count();
        }
        assert_eq!(
            g.stats().indirect_prefetches,
            0,
            "no correlation on fresh misses"
        );
        let _ = total;
    }

    #[test]
    fn capacity_bounds_history() {
        let mut g = Ghb::new(8, 1);
        let mut v = MapValueSource::new();
        // Train a pattern, then push it out of the 8-entry buffer with
        // other misses; re-walking the pattern must not correlate.
        let pattern = [0x1000u64, 0x2000, 0x3000];
        for &a in &pattern {
            g.on_access_collect(miss(a), &mut v);
        }
        for i in 0..16u64 {
            g.on_access_collect(miss(0x100_0000 + i * 4096), &mut v);
        }
        let before = g.stats().indirect_prefetches;
        for &a in &pattern {
            g.on_access_collect(miss(a), &mut v);
        }
        let correlated = g.stats().indirect_prefetches - before;
        assert_eq!(correlated, 0, "history evicted: no stale correlations");
    }
}
