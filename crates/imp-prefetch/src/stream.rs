//! The stream half of the Prefetch Table: a traditional PC-associated
//! stream prefetcher working at word granularity (paper Section 3.2,
//! Figure 5), usable standalone as the *Baseline* prefetcher.

use crate::access::{
    Access, L1Prefetcher, PrefetchCtx, PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use imp_common::{Addr, LineAddr, Pc, SectorMask, LINE_BYTES};

/// Applies the paper's Eq. (2): `(value shift) + base`. Non-negative
/// shifts are left shifts (coefficients 4, 8, 16); negative shifts are
/// right shifts (coefficient 1/8 for bit vectors).
pub fn shift_apply(value: u64, shift: i8) -> u64 {
    if shift >= 0 {
        value.wrapping_shl(u32::from(shift as u8))
    } else {
        value.wrapping_shr((-i32::from(shift)) as u32)
    }
}

/// State of one stream-table entry (the `pc`, `addr`, `hit cnt` fields of
/// Figure 5, plus stride bookkeeping).
#[derive(Clone, Debug)]
pub struct StreamEntry {
    /// PC of the instruction scanning the stream.
    pub pc: Pc,
    /// Most recently accessed address of the stream.
    pub last_addr: Addr,
    /// Element size observed (bytes).
    pub size: u32,
    /// Confirmed word-granularity stride in bytes (0 = not yet known).
    pub stride: i64,
    /// Candidate stride awaiting confirmation.
    pending_stride: i64,
    /// Stream confirmations (saturating).
    pub hit_cnt: u32,
    /// Prefetch frontier: last line prefetched in stride direction.
    frontier: Option<LineAddr>,
    /// LRU stamp.
    pub lru: u64,
}

impl StreamEntry {
    fn new(pc: Pc, addr: Addr, size: u32, lru: u64) -> Self {
        StreamEntry {
            pc,
            last_addr: addr,
            size,
            stride: 0,
            pending_stride: 0,
            hit_cnt: 0,
            frontier: None,
            lru,
        }
    }

    /// True once the stream is established (enough confirmations).
    pub fn established(&self, threshold: u32) -> bool {
        self.stride != 0 && self.hit_cnt >= threshold
    }
}

/// What happened to a stream entry on an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// First time this PC was seen; entry allocated.
    Allocated,
    /// Access continued the stream at the expected stride.
    Continued,
    /// Access broke the stride (position updated without re-learning:
    /// the nested-loop behaviour of Section 3.3.1).
    Hiccup,
}

/// A table of [`StreamEntry`]s with LRU replacement; this is both the
/// Baseline stream prefetcher's state and the stream half of IMP's
/// Prefetch Table.
#[derive(Debug)]
pub struct StreamTable {
    entries: Vec<StreamEntry>,
    /// `pcs[i]` mirrors `entries[i].pc`: the per-access PC lookup scans
    /// this flat array (a couple of cache lines) instead of striding
    /// through the full entry structs.
    pcs: Vec<Pc>,
    capacity: usize,
    threshold: u32,
    distance_lines: u32,
    stamp: u64,
    /// Reusable output buffer for [`StreamTable::observe`] (prefetched
    /// lines are returned as a borrowed slice to keep the per-access
    /// path allocation-free).
    line_buf: Vec<LineAddr>,
}

impl StreamTable {
    /// Creates a table of `capacity` entries; a stream is established
    /// after `threshold` stride confirmations, and prefetching runs
    /// `distance_lines` cache lines ahead.
    pub fn new(capacity: usize, threshold: u32, distance_lines: u32) -> Self {
        StreamTable {
            entries: Vec::with_capacity(capacity),
            pcs: Vec::with_capacity(capacity),
            capacity,
            threshold,
            distance_lines,
            stamp: 0,
            line_buf: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no streams are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sentinel PC marking detached entries (secondary indirections own
    /// a PT slot but no instruction stream, Section 3.3.2).
    pub const DETACHED_PC: Pc = Pc::new(u32::MAX);

    /// The entry index tracking `pc`, if any. Detached entries never match.
    pub fn find(&self, pc: Pc) -> Option<usize> {
        if pc == Self::DETACHED_PC {
            return None;
        }
        self.pcs.iter().position(|&p| p == pc)
    }

    /// Refreshes the LRU stamp of an entry (used to keep secondary
    /// pattern slots alive while their parent prefetches through them).
    pub fn touch(&mut self, idx: usize) {
        self.stamp += 1;
        self.entries[idx].lru = self.stamp;
    }

    /// Allocates a detached slot (for a secondary indirect pattern):
    /// takes a free slot if available, otherwise the LRU entry whose
    /// index is not `protected`. Returns `None` if every candidate is
    /// protected.
    pub fn alloc_detached(&mut self, protected: impl Fn(usize) -> bool) -> Option<usize> {
        self.stamp += 1;
        let stamp = self.stamp;
        if self.entries.len() < self.capacity {
            self.entries
                .push(StreamEntry::new(Self::DETACHED_PC, Addr::new(0), 0, stamp));
            self.pcs.push(Self::DETACHED_PC);
            return Some(self.entries.len() - 1);
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !protected(*i))
            .min_by_key(|(_, e)| e.lru)
            .map(|(i, _)| i)?;
        self.entries[victim] = StreamEntry::new(Self::DETACHED_PC, Addr::new(0), 0, stamp);
        self.pcs[victim] = Self::DETACHED_PC;
        Some(victim)
    }

    /// Immutable access to an entry.
    pub fn entry(&self, idx: usize) -> &StreamEntry {
        &self.entries[idx]
    }

    /// Observes an access; returns the entry index, what happened, and
    /// any stream prefetches to issue (a slice into an internal buffer
    /// that the next `observe` call overwrites). On replacement the
    /// evicted entry index is reused (callers keep per-index side state
    /// and must reset it when `StreamEvent::Allocated` is reported).
    pub fn observe(&mut self, pc: Pc, addr: Addr, size: u32) -> (usize, StreamEvent, &[LineAddr]) {
        self.stamp += 1;
        let stamp = self.stamp;
        self.line_buf.clear();
        if let Some(i) = self.find(pc) {
            let threshold = self.threshold;
            let distance = self.distance_lines;
            let e = &mut self.entries[i];
            e.lru = stamp;
            let delta = addr.raw() as i64 - e.last_addr.raw() as i64;
            e.last_addr = addr;
            e.size = size;
            let event = if delta != 0 && delta == e.stride {
                e.hit_cnt = e.hit_cnt.saturating_add(1);
                StreamEvent::Continued
            } else if delta != 0 && e.stride == 0 && e.pending_stride == 0 {
                // First observed delta: adopt it as the candidate stride.
                e.stride = delta;
                e.hit_cnt = 1;
                StreamEvent::Continued
            } else if delta != 0 && delta == e.pending_stride {
                // Two consistent deltas establish (or re-establish) the
                // stride without discarding the indirect pattern.
                e.stride = delta;
                e.hit_cnt = e.hit_cnt.saturating_add(1);
                StreamEvent::Continued
            } else if delta == 0 {
                StreamEvent::Hiccup
            } else {
                e.pending_stride = delta;
                // Position jump (outer-loop restart): keep stride, move on.
                e.frontier = None;
                StreamEvent::Hiccup
            };
            if e.established(threshold) && event == StreamEvent::Continued {
                Self::advance_frontier(e, distance, &mut self.line_buf);
            }
            (i, event, &self.line_buf)
        } else {
            let idx = if self.entries.len() < self.capacity {
                self.entries.push(StreamEntry::new(pc, addr, size, stamp));
                self.pcs.push(pc);
                self.entries.len() - 1
            } else {
                let (vi, _) = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .expect("table not empty");
                self.entries[vi] = StreamEntry::new(pc, addr, size, stamp);
                self.pcs[vi] = pc;
                vi
            };
            (idx, StreamEvent::Allocated, &self.line_buf)
        }
    }

    /// Address of the stream element `elems` ahead of the current
    /// position of entry `idx` (where IMP reads `B[i + delta]`).
    pub fn lookahead_addr(&self, idx: usize, elems: u32) -> Addr {
        let e = &self.entries[idx];
        e.last_addr.offset(e.stride * i64::from(elems))
    }

    fn advance_frontier(e: &mut StreamEntry, distance_lines: u32, out: &mut Vec<LineAddr>) {
        let dir: i64 = if e.stride >= 0 { 1 } else { -1 };
        let cur = LineAddr::containing(e.last_addr);
        let target_addr = e
            .last_addr
            .offset(e.stride.signum() * (i64::from(distance_lines) * LINE_BYTES as i64));
        let target = LineAddr::containing(target_addr);
        let mut next = match e.frontier {
            Some(f) => f.step(dir),
            None => cur.step(dir),
        };
        // Issue at most `distance_lines` new line prefetches per access.
        let mut budget = distance_lines;
        while budget > 0 && (dir > 0 && next <= target || dir < 0 && next >= target) {
            out.push(next);
            e.frontier = Some(next);
            next = next.step(dir);
            budget -= 1;
        }
    }
}

/// The Baseline configuration's standalone stream prefetcher.
#[derive(Debug)]
pub struct StreamPrefetcher {
    table: StreamTable,
    stats: PrefetcherStats,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with `entries` table entries.
    pub fn new(entries: usize, threshold: u32, distance_lines: u32) -> Self {
        StreamPrefetcher {
            table: StreamTable::new(entries, threshold, distance_lines),
            stats: PrefetcherStats::default(),
        }
    }

    /// The paper's baseline: 16 entries, established after 2
    /// confirmations, running 4 lines ahead.
    pub fn paper_default() -> Self {
        Self::new(16, 2, 4)
    }
}

impl L1Prefetcher for StreamPrefetcher {
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        let (_, _, lines) = self.table.observe(access.pc, access.addr, access.size);
        self.stats.stream_prefetches += lines.len() as u64;
        ctx.out.extend(lines.iter().map(|l| PrefetchRequest {
            pc: access.pc,
            addr: l.base(),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Sequential,
        }));
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shim surface must keep working; exercising it here
    // keeps it covered.
    #![allow(deprecated)]

    use super::*;
    use crate::access::MapValueSource;

    #[test]
    fn shift_apply_matches_coefficients() {
        assert_eq!(shift_apply(5, 2), 20); // coeff 4
        assert_eq!(shift_apply(5, 3), 40); // coeff 8
        assert_eq!(shift_apply(5, 4), 80); // coeff 16
        assert_eq!(shift_apply(40, -3), 5); // coeff 1/8
    }

    #[test]
    fn stream_established_after_threshold() {
        let mut t = StreamTable::new(4, 2, 4);
        let pc = Pc::new(7);
        let (i, ev, _) = t.observe(pc, Addr::new(0x1000), 4);
        assert_eq!(ev, StreamEvent::Allocated);
        t.observe(pc, Addr::new(0x1004), 4);
        assert!(!t.entry(i).established(2));
        t.observe(pc, Addr::new(0x1008), 4);
        assert!(t.entry(i).established(2));
        assert_eq!(t.entry(i).stride, 4);
    }

    #[test]
    fn descending_streams_detected() {
        // SymGS's backward sweep scans indices downward.
        let mut t = StreamTable::new(4, 2, 4);
        let pc = Pc::new(1);
        for k in 0..5i64 {
            t.observe(pc, Addr::new((0x2000 - 8 * k) as u64), 8);
        }
        let i = t.find(pc).unwrap();
        assert_eq!(t.entry(i).stride, -8);
        assert!(t.entry(i).established(2));
    }

    #[test]
    fn prefetches_run_ahead_of_stream() {
        let mut p = StreamPrefetcher::new(4, 2, 4);
        let mut v = MapValueSource::new();
        let pc = Pc::new(3);
        let mut lines = Vec::new();
        for k in 0..40u64 {
            let reqs =
                p.on_access_collect(Access::load_hit(pc, Addr::new(0x4000 + 4 * k), 4), &mut v);
            lines.extend(reqs.iter().map(|r| r.line()));
        }
        assert!(!lines.is_empty());
        // All prefetched lines are ahead of the start and unique.
        let mut sorted = lines.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), lines.len(), "no duplicate line prefetches");
        assert!(lines.iter().all(|l| l.base().raw() > 0x4000));
        assert_eq!(p.stats().stream_prefetches, lines.len() as u64);
    }

    #[test]
    fn hiccup_keeps_stride_and_moves_position() {
        // Section 3.3.1: an outer-loop restart jumps the position; the
        // stride (and any indirect pattern) must survive.
        let mut t = StreamTable::new(4, 2, 4);
        let pc = Pc::new(9);
        for k in 0..4u64 {
            t.observe(pc, Addr::new(0x1000 + 4 * k), 4);
        }
        let i = t.find(pc).unwrap();
        assert_eq!(t.entry(i).stride, 4);
        let (j, ev, _) = t.observe(pc, Addr::new(0x9000), 4);
        assert_eq!(i, j);
        assert_eq!(ev, StreamEvent::Hiccup);
        assert_eq!(t.entry(i).stride, 4, "stride survives the jump");
        assert_eq!(t.entry(i).last_addr, Addr::new(0x9000));
        // Stream continues at the new position immediately.
        let (_, ev, _) = t.observe(pc, Addr::new(0x9004), 4);
        assert_eq!(ev, StreamEvent::Continued);
    }

    #[test]
    fn lru_replacement_on_pc_pressure() {
        let mut t = StreamTable::new(2, 2, 4);
        t.observe(Pc::new(1), Addr::new(0x100), 4);
        t.observe(Pc::new(2), Addr::new(0x200), 4);
        t.observe(Pc::new(1), Addr::new(0x104), 4); // refresh pc1
        let (idx, ev, _) = t.observe(Pc::new(3), Addr::new(0x300), 4);
        assert_eq!(ev, StreamEvent::Allocated);
        // pc2 was LRU; its slot is reused.
        assert_eq!(t.entry(idx).pc, Pc::new(3));
        assert!(t.find(Pc::new(2)).is_none());
        assert!(t.find(Pc::new(1)).is_some());
    }

    #[test]
    fn lookahead_address_follows_stride() {
        let mut t = StreamTable::new(2, 2, 4);
        let pc = Pc::new(5);
        for k in 0..3u64 {
            t.observe(pc, Addr::new(0x1000 + 4 * k), 4);
        }
        let i = t.find(pc).unwrap();
        assert_eq!(t.lookahead_addr(i, 4), Addr::new(0x1008 + 16));
    }
}
