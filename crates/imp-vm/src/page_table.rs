//! A sparse radix page table and the walker that charges its traversal
//! cost.

use imp_common::{Addr, Cycle, FastMap};

/// Bits of a virtual address (matches `imp_prefetch::cost::ADDRESS_BITS`:
/// the paper sizes its tables for a 48-bit space).
pub const ADDRESS_BITS: u32 = 48;

/// Index bits consumed per radix level (512-entry nodes, as in x86-64).
pub const LEVEL_BITS: u32 = 9;

/// Base of the synthetic address region holding page-table nodes.
///
/// Walks under `WalkModel::Cached` read page-table entries at these
/// addresses through the cache hierarchy. The region sits at bit 46 of
/// the 48-bit space, far above anything the workload generators map, so
/// PTE lines never alias demand lines.
pub const PT_BASE: u64 = 0x4000_0000_0000;

/// Bytes occupied by one radix node (512 slots x 8-byte entries).
pub const NODE_BYTES: u64 = (1 << LEVEL_BITS) as u64 * PTE_BYTES;

/// Bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;

/// Deepest radix tree the 48-bit space can produce (the smallest legal
/// page is one 64-byte cache line: ceil((48 - 6) / 9) = 5 levels).
pub const MAX_LEVELS: usize = 5;

/// One interior node of the radix tree. Nodes are sparse: only slots a
/// mapping ever touched exist, which keeps identity-mapping a scattered
/// footprint cheap. Each node carries a stable id assigned at creation,
/// which anchors it at a deterministic address in the [`PT_BASE`]
/// region for cached walks.
#[derive(Clone, Debug, Default)]
struct Node {
    id: u64,
    tables: FastMap<u32, Node>,
    leaves: FastMap<u32, u64>,
    /// Huge-page leaves: a slot one level above the base leaves maps a
    /// whole 512-base-page range at once (the x86 PDE-as-2MB-leaf
    /// shape). Kept separate from `tables` so a huge mapping can never
    /// be confused with an interior pointer.
    huge_leaves: FastMap<u32, u64>,
}

/// A radix page table mapping virtual page numbers to physical page
/// numbers.
///
/// The tree has `levels()` levels — `ceil((48 - page_bits) / 9)` — so
/// larger pages walk fewer levels, exactly the lever huge pages pull in
/// real hardware.
///
/// ```
/// use imp_vm::PageTable;
///
/// let mut pt = PageTable::new(4096);
/// assert_eq!(pt.levels(), 4); // (48 - 12) / 9, rounded up
/// pt.map(5, 9);
/// assert_eq!(pt.lookup(5), Some(9));
/// assert_eq!(pt.lookup(6), None);
/// ```
#[derive(Clone, Debug)]
pub struct PageTable {
    root: Node,
    page_shift: u32,
    levels: u32,
    mapped_pages: u64,
    mapped_huge_pages: u64,
    next_node_id: u64,
}

impl PageTable {
    /// Creates an empty table for `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or does not leave at
    /// least one VPN bit below 48.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let page_shift = page_bytes.trailing_zeros();
        assert!(
            page_shift < ADDRESS_BITS,
            "page size must leave VPN bits in a 48-bit space"
        );
        let vpn_bits = ADDRESS_BITS - page_shift;
        PageTable {
            root: Node::default(), // the root is node 0
            page_shift,
            levels: vpn_bits.div_ceil(LEVEL_BITS),
            mapped_pages: 0,
            mapped_huge_pages: 0,
            next_node_id: 1,
        }
    }

    /// Radix depth of a walk through this table.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The page size the table maps at.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// Virtual page number of a byte address.
    pub fn vpn(&self, vaddr: Addr) -> u64 {
        vaddr.raw() >> self.page_shift
    }

    /// Number of base-page leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of huge-page leaf mappings installed.
    pub fn mapped_huge_pages(&self) -> u64 {
        self.mapped_huge_pages
    }

    /// The huge-page size one radix level above the base pages
    /// (512 base pages: 2 MB for a 4 KB base).
    pub fn huge_page_bytes(&self) -> u64 {
        1u64 << self.huge_shift()
    }

    /// Page shift of huge pages.
    pub fn huge_shift(&self) -> u32 {
        self.page_shift + LEVEL_BITS
    }

    /// Huge virtual page number of a byte address.
    pub fn hvpn(&self, vaddr: Addr) -> u64 {
        vaddr.raw() >> self.huge_shift()
    }

    /// Radix depth of a huge-page walk: one level shallower than a
    /// base-page walk (the leaf sits where the last interior table
    /// would hang).
    pub fn levels_huge(&self) -> u32 {
        self.levels - 1
    }

    /// Whether this table's geometry can hold huge leaves: the base
    /// walk must be at least two levels deep (so there is a level to
    /// collapse) — equivalently, the huge shift must leave VPN bits in
    /// the 48-bit space.
    pub fn supports_huge(&self) -> bool {
        self.levels >= 2 && self.huge_shift() < ADDRESS_BITS
    }

    /// Radix slot index of `vpn` at `level` (0 = root). Levels are
    /// walked without materializing the index list: this sits on the
    /// TLB-miss path of every core.
    fn slot_at(&self, vpn: u64, level: u32) -> u32 {
        let shift = (self.levels - 1 - level) * LEVEL_BITS;
        ((vpn >> shift) & ((1 << LEVEL_BITS) - 1)) as u32
    }

    /// Installs `vpn` → `ppn`, creating interior nodes as needed.
    /// Returns `true` if the page was not mapped before.
    pub fn map(&mut self, vpn: u64, ppn: u64) -> bool {
        let levels = self.levels;
        let slot =
            |l: u32| ((vpn >> ((levels - 1 - l) * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)) as u32;
        let next_id = &mut self.next_node_id;
        let mut node = &mut self.root;
        for l in 0..levels - 1 {
            node = node.tables.entry(slot(l)).or_insert_with(|| {
                let fresh = Node {
                    id: *next_id,
                    ..Node::default()
                };
                *next_id += 1;
                fresh
            });
        }
        let fresh = node.leaves.insert(slot(levels - 1), ppn).is_none();
        if fresh {
            self.mapped_pages += 1;
        }
        fresh
    }

    /// Looks `vpn` up without side effects.
    pub fn lookup(&self, vpn: u64) -> Option<u64> {
        let mut node = &self.root;
        for l in 0..self.levels - 1 {
            node = node.tables.get(&self.slot_at(vpn, l))?;
        }
        node.leaves
            .get(&self.slot_at(vpn, self.levels - 1))
            .copied()
    }

    /// The page-table-entry addresses a walk for `vpn` reads, one per
    /// radix level, in pointer-chase order (each read depends on the
    /// previous one's value).
    ///
    /// Every node sits at a stable, deterministic address in the
    /// [`PT_BASE`] region — `PT_BASE + id * NODE_BYTES + slot *
    /// PTE_BYTES` — so walks of neighbouring VPNs share PTE cache lines
    /// exactly the way a real page table's spatial locality works. The
    /// path is only complete after the page has been mapped (walkers
    /// map on first touch before asking); unmapped tails are simply
    /// absent from the returned path.
    pub fn pte_path(&self, vpn: u64) -> ([Addr; MAX_LEVELS], usize) {
        let mut out = [Addr::new(0); MAX_LEVELS];
        let mut len = 0;
        let mut node = &self.root;
        for l in 0..self.levels {
            let slot = self.slot_at(vpn, l);
            out[len] = Addr::new(PT_BASE + node.id * NODE_BYTES + u64::from(slot) * PTE_BYTES);
            len += 1;
            if l + 1 < self.levels {
                match node.tables.get(&slot) {
                    Some(next) => node = next,
                    None => break,
                }
            }
        }
        (out, len)
    }

    /// Radix slot index of huge page `hvpn` at `level` (0 = root) in
    /// the `levels_huge()`-deep huge walk. Because `hvpn == vpn >> 9`,
    /// these slots coincide with the base walk's slots at the same
    /// depths — huge and base mappings share interior nodes.
    fn huge_slot_at(&self, hvpn: u64, level: u32) -> u32 {
        let shift = (self.levels_huge() - 1 - level) * LEVEL_BITS;
        ((hvpn >> shift) & ((1 << LEVEL_BITS) - 1)) as u32
    }

    /// Installs the huge mapping `hvpn` → `hppn`, creating interior
    /// nodes as needed. Returns `true` if the huge page was not mapped
    /// before.
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot hold huge leaves (see
    /// [`PageTable::supports_huge`]; validate user configuration with
    /// [`crate::validate_config`] / [`crate::Vm::with_placement`]
    /// first).
    pub fn map_huge(&mut self, hvpn: u64, hppn: u64) -> bool {
        assert!(
            self.supports_huge(),
            "page table geometry has no level to hold huge leaves"
        );
        let levels = self.levels_huge();
        let slot =
            |l: u32| ((hvpn >> ((levels - 1 - l) * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)) as u32;
        let next_id = &mut self.next_node_id;
        let mut node = &mut self.root;
        for l in 0..levels - 1 {
            node = node.tables.entry(slot(l)).or_insert_with(|| {
                let fresh = Node {
                    id: *next_id,
                    ..Node::default()
                };
                *next_id += 1;
                fresh
            });
        }
        let fresh = node.huge_leaves.insert(slot(levels - 1), hppn).is_none();
        if fresh {
            self.mapped_huge_pages += 1;
        }
        fresh
    }

    /// Looks huge page `hvpn` up without side effects.
    pub fn lookup_huge(&self, hvpn: u64) -> Option<u64> {
        let mut node = &self.root;
        for l in 0..self.levels_huge() - 1 {
            node = node.tables.get(&self.huge_slot_at(hvpn, l))?;
        }
        node.huge_leaves
            .get(&self.huge_slot_at(hvpn, self.levels_huge() - 1))
            .copied()
    }

    /// The page-table-entry addresses a *huge* walk for `hvpn` reads:
    /// one fewer than a base-page walk, with the last read being the
    /// huge leaf entry itself. Interior reads coincide with the base
    /// walk's (shared nodes, shared PTE cache lines).
    pub fn pte_path_huge(&self, hvpn: u64) -> ([Addr; MAX_LEVELS], usize) {
        let mut out = [Addr::new(0); MAX_LEVELS];
        let mut len = 0;
        let mut node = &self.root;
        for l in 0..self.levels_huge() {
            let slot = self.huge_slot_at(hvpn, l);
            out[len] = Addr::new(PT_BASE + node.id * NODE_BYTES + u64::from(slot) * PTE_BYTES);
            len += 1;
            if l + 1 < self.levels_huge() {
                match node.tables.get(&slot) {
                    Some(next) => node = next,
                    None => break,
                }
            }
        }
        (out, len)
    }
}

/// Where a cached page walk reads its page-table entries from.
///
/// Under `WalkModel::Cached` the simulator implements this over the
/// real memory hierarchy: each PTE read crosses the NoC to its home L2
/// slice and falls through to DRAM on a miss, contending with demand
/// traffic. [`FlatWalkMemory`] is the trivial fixed-latency
/// implementation.
pub trait WalkMemory {
    /// Performs the page-table-entry read at `pte` on behalf of `core`,
    /// issued at `now`; returns the cycle the entry's value is
    /// available (the next level's read may start then).
    fn pte_read(&mut self, core: usize, pte: Addr, now: Cycle) -> Cycle;
}

/// A [`WalkMemory`] charging a flat latency per PTE read — the
/// `WalkModel::Flat` timing expressed through the hook interface
/// (standalone `Vm` users and tests walk through this).
#[derive(Clone, Copy, Debug)]
pub struct FlatWalkMemory(pub Cycle);

impl WalkMemory for FlatWalkMemory {
    fn pte_read(&mut self, _core: usize, _pte: Addr, now: Cycle) -> Cycle {
        now + self.0
    }
}

/// Charges the traversal cost of a [`PageTable`].
///
/// The walker models a hardware page-miss handler: each radix level
/// costs `latency_per_level` cycles (a pointer chase through the memory
/// hierarchy), or — via [`PageWalker::walk_via`] — whatever a
/// [`WalkMemory`] says each level's PTE read costs. Unmapped pages are
/// identity-mapped on first touch — the simulated OS demand-allocates,
/// so a walk never faults.
#[derive(Clone, Copy, Debug)]
pub struct PageWalker {
    latency_per_level: Cycle,
}

/// Outcome of one page-table walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Walk {
    /// The physical page number the walk resolved to.
    pub ppn: u64,
    /// Cycles the walk took (levels × per-level latency).
    pub cycles: Cycle,
    /// Radix levels traversed.
    pub levels: u32,
}

impl PageWalker {
    /// A walker charging `latency_per_level` cycles per radix level.
    pub fn new(latency_per_level: Cycle) -> Self {
        PageWalker { latency_per_level }
    }

    /// The flat per-level latency this walker charges.
    pub fn latency_per_level(&self) -> Cycle {
        self.latency_per_level
    }

    /// Resolves `vaddr`'s page through `table`, identity-mapping it on
    /// first touch, and returns the flat charged cost (levels x the
    /// per-level latency).
    pub fn walk(&self, table: &mut PageTable, vaddr: Addr) -> Walk {
        let ppn = Self::resolve(table, vaddr);
        Walk {
            ppn,
            cycles: Cycle::from(table.levels()) * self.latency_per_level,
            levels: table.levels(),
        }
    }

    /// Resolves `vaddr`'s page through `table`, reading each level's
    /// page-table entry through `mem` starting at `now` — the reads
    /// chain (a pointer chase), so the walk costs whatever the memory
    /// hierarchy says. `core` identifies the walking core to `mem`.
    pub fn walk_via(
        &self,
        table: &mut PageTable,
        vaddr: Addr,
        core: usize,
        now: Cycle,
        mem: &mut dyn WalkMemory,
    ) -> Walk {
        let ppn = Self::resolve(table, vaddr);
        let (ptes, len) = table.pte_path(table.vpn(vaddr));
        let mut t = now;
        for pte in &ptes[..len] {
            t = mem.pte_read(core, *pte, t);
        }
        Walk {
            ppn,
            cycles: t - now,
            levels: table.levels(),
        }
    }

    /// Resolves `vaddr`'s *huge* page through `table`,
    /// identity-mapping it on first touch; the flat charged cost is one
    /// level shallower than a base-page walk.
    pub fn walk_huge(&self, table: &mut PageTable, vaddr: Addr) -> Walk {
        let hppn = Self::resolve_huge(table, vaddr);
        Walk {
            ppn: hppn,
            cycles: Cycle::from(table.levels_huge()) * self.latency_per_level,
            levels: table.levels_huge(),
        }
    }

    /// [`PageWalker::walk_via`] for a *huge* page: one fewer dependent
    /// PTE read, the last being the huge leaf entry.
    pub fn walk_via_huge(
        &self,
        table: &mut PageTable,
        vaddr: Addr,
        core: usize,
        now: Cycle,
        mem: &mut dyn WalkMemory,
    ) -> Walk {
        let hppn = Self::resolve_huge(table, vaddr);
        let (ptes, len) = table.pte_path_huge(table.hvpn(vaddr));
        let mut t = now;
        for pte in &ptes[..len] {
            t = mem.pte_read(core, *pte, t);
        }
        Walk {
            ppn: hppn,
            cycles: t - now,
            levels: table.levels_huge(),
        }
    }

    /// Functional half of a walk: the resolved PPN, identity-mapping
    /// the page on first touch.
    fn resolve(table: &mut PageTable, vaddr: Addr) -> u64 {
        let vpn = table.vpn(vaddr);
        match table.lookup(vpn) {
            Some(p) => p,
            None => {
                table.map(vpn, vpn);
                vpn
            }
        }
    }

    /// Functional half of a huge walk: the resolved huge PPN,
    /// identity-mapping the huge page on first touch.
    fn resolve_huge(table: &mut PageTable, vaddr: Addr) -> u64 {
        let hvpn = table.hvpn(vaddr);
        match table.lookup_huge(hvpn) {
            Some(p) => p,
            None => {
                table.map_huge(hvpn, hvpn);
                hvpn
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_shrink_with_page_size() {
        assert_eq!(PageTable::new(4096).levels(), 4); // 36 VPN bits
        assert_eq!(PageTable::new(64 * 1024).levels(), 4); // 32 bits
        assert_eq!(PageTable::new(2 * 1024 * 1024).levels(), 3); // 27 bits
        assert_eq!(PageTable::new(1 << 30).levels(), 2); // 18 bits
    }

    #[test]
    fn map_lookup_roundtrip_and_remap() {
        let mut pt = PageTable::new(4096);
        assert!(pt.map(0x1234, 7));
        assert!(!pt.map(0x1234, 8), "remap is not a fresh mapping");
        assert_eq!(pt.lookup(0x1234), Some(8));
        assert_eq!(pt.lookup(0x1235), None);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distant_vpns_do_not_collide() {
        let mut pt = PageTable::new(4096);
        // Same low slot bits, different upper levels.
        let a = 0x0000_0000_0042u64;
        let b = 0x0000_0800_0042u64; // differs only above level-3 bits
        pt.map(a, 1);
        pt.map(b, 2);
        assert_eq!(pt.lookup(a), Some(1));
        assert_eq!(pt.lookup(b), Some(2));
    }

    #[test]
    fn pte_path_is_deterministic_and_shares_interior_lines() {
        let mut pt = PageTable::new(4096);
        pt.map(0x42, 0x42);
        let (path, len) = pt.pte_path(0x42);
        assert_eq!(len, 4, "complete path after mapping");
        // The root read always sits in node 0's slab.
        assert!(path[0].raw() >= PT_BASE && path[0].raw() < PT_BASE + NODE_BYTES);
        // Re-walking yields the identical path.
        assert_eq!(pt.pte_path(0x42), (path, len));
        // A neighbouring VPN shares every interior node; only the leaf
        // slot differs (and by exactly one PTE).
        pt.map(0x43, 0x43);
        let (next, next_len) = pt.pte_path(0x43);
        assert_eq!(next_len, 4);
        assert_eq!(&next[..3], &path[..3], "interior levels shared");
        assert_eq!(next[3].raw(), path[3].raw() + PTE_BYTES);
        // A distant VPN allocates fresh interior nodes at fresh ids; its
        // root read stays inside node 0's slab (different slot), and its
        // deeper reads land in other slabs.
        pt.map(0x42 + (1 << 27), 1);
        let (far, _) = pt.pte_path(0x42 + (1 << 27));
        assert!(far[0].raw() >= PT_BASE && far[0].raw() < PT_BASE + NODE_BYTES);
        assert_ne!(far[0], path[0], "different root slot");
        assert!(far[1].raw() >= PT_BASE + NODE_BYTES, "fresh interior node");
    }

    #[test]
    fn walk_via_chases_pte_reads_and_matches_flat_timing() {
        let mut pt = PageTable::new(4096);
        let w = PageWalker::new(25);
        // A recording memory: counts reads, charges 7 cycles each.
        struct Recorder(Vec<(usize, Addr)>);
        impl WalkMemory for Recorder {
            fn pte_read(&mut self, core: usize, pte: Addr, now: Cycle) -> Cycle {
                self.0.push((core, pte));
                now + 7
            }
        }
        let mut rec = Recorder(Vec::new());
        let walk = w.walk_via(&mut pt, Addr::new(0x5000), 3, 100, &mut rec);
        assert_eq!(walk.ppn, 5, "first touch identity-maps");
        assert_eq!(walk.levels, 4);
        assert_eq!(walk.cycles, 4 * 7, "cost comes from the hook");
        assert_eq!(rec.0.len(), 4);
        assert!(rec.0.iter().all(|(c, _)| *c == 3));
        // FlatWalkMemory reproduces the flat model exactly.
        let flat = w.walk_via(&mut pt, Addr::new(0x9000), 0, 0, &mut FlatWalkMemory(25));
        assert_eq!(flat.cycles, w.walk(&mut pt, Addr::new(0xA000)).cycles);
    }

    #[test]
    fn huge_leaves_sit_one_level_up_and_share_interiors() {
        let mut pt = PageTable::new(4096);
        assert!(pt.supports_huge());
        assert_eq!(pt.huge_page_bytes(), 2 * 1024 * 1024);
        assert_eq!(pt.levels_huge(), 3);

        // Map the huge page covering base VPNs [0x200, 0x400) and a
        // base page just below it: interior nodes are shared.
        assert!(pt.map_huge(1, 1));
        assert!(!pt.map_huge(1, 1), "remap is not fresh");
        pt.map(0x1ff, 0x1ff);
        assert_eq!(pt.lookup_huge(1), Some(1));
        assert_eq!(pt.mapped_huge_pages(), 1);
        assert_eq!(pt.mapped_pages(), 1, "huge leaves are ledgered apart");
        // The huge mapping does not shadow base lookups (the simulator
        // classifies an address to exactly one size before asking).
        assert_eq!(pt.lookup(0x200), None);

        let (hpath, hlen) = pt.pte_path_huge(1);
        let (bpath, blen) = pt.pte_path(0x1ff);
        assert_eq!(hlen, 3, "one fewer PTE read than a base walk");
        assert_eq!(blen, 4);
        assert_eq!(&hpath[..2], &bpath[..2], "interior levels shared");

        // A 2-level geometry still holds huge leaves in the root.
        let mut shallow = PageTable::new(1 << 30);
        assert_eq!(shallow.levels(), 2);
        assert!(shallow.supports_huge());
        assert!(shallow.map_huge(3, 3));
        assert_eq!(shallow.lookup_huge(3), Some(3));
        assert_eq!(shallow.pte_path_huge(3).1, 1);

        // A 1-level geometry cannot.
        assert!(!PageTable::new(1 << 40).supports_huge());
    }

    #[test]
    fn huge_walks_are_one_level_shallower() {
        let mut pt = PageTable::new(4096);
        let w = PageWalker::new(25);
        let a = Addr::new(5 * 2 * 1024 * 1024 + 0x1234);
        let walk = w.walk_huge(&mut pt, a);
        assert_eq!(walk.levels, 3);
        assert_eq!(walk.cycles, 3 * 25);
        assert_eq!(walk.ppn, 5, "first touch identity-maps the huge page");
        assert_eq!(pt.lookup_huge(5), Some(5));
        // The cached-walk variant reads exactly levels_huge PTEs.
        struct Counter(u64);
        impl WalkMemory for Counter {
            fn pte_read(&mut self, _c: usize, _p: Addr, now: Cycle) -> Cycle {
                self.0 += 1;
                now + 7
            }
        }
        let mut counter = Counter(0);
        let via = w.walk_via_huge(&mut pt, a, 0, 100, &mut counter);
        assert_eq!(counter.0, 3);
        assert_eq!(via.cycles, 3 * 7);
        assert_eq!(via.ppn, 5);
    }

    #[test]
    fn walker_charges_per_level_and_identity_maps() {
        let mut pt = PageTable::new(4096);
        let w = PageWalker::new(25);
        let walk = w.walk(&mut pt, Addr::new(0x5000));
        assert_eq!(walk.cycles, 100);
        assert_eq!(walk.levels, 4);
        assert_eq!(walk.ppn, 5, "first touch identity-maps");
        assert_eq!(pt.lookup(5), Some(5));
        // A pre-existing (non-identity) mapping is respected.
        pt.map(9, 42);
        assert_eq!(w.walk(&mut pt, Addr::new(9 * 4096)).ppn, 42);
    }
}
