//! A sparse radix page table and the walker that charges its traversal
//! cost.

use imp_common::{Addr, Cycle};
use std::collections::HashMap;

/// Bits of a virtual address (matches `imp_prefetch::cost::ADDRESS_BITS`:
/// the paper sizes its tables for a 48-bit space).
pub const ADDRESS_BITS: u32 = 48;

/// Index bits consumed per radix level (512-entry nodes, as in x86-64).
pub const LEVEL_BITS: u32 = 9;

/// One interior node of the radix tree. Nodes are sparse: only slots a
/// mapping ever touched exist, which keeps identity-mapping a scattered
/// footprint cheap.
#[derive(Clone, Debug, Default)]
struct Node {
    tables: HashMap<u32, Node>,
    leaves: HashMap<u32, u64>,
}

/// A radix page table mapping virtual page numbers to physical page
/// numbers.
///
/// The tree has `levels()` levels — `ceil((48 - page_bits) / 9)` — so
/// larger pages walk fewer levels, exactly the lever huge pages pull in
/// real hardware.
///
/// ```
/// use imp_vm::PageTable;
///
/// let mut pt = PageTable::new(4096);
/// assert_eq!(pt.levels(), 4); // (48 - 12) / 9, rounded up
/// pt.map(5, 9);
/// assert_eq!(pt.lookup(5), Some(9));
/// assert_eq!(pt.lookup(6), None);
/// ```
#[derive(Clone, Debug)]
pub struct PageTable {
    root: Node,
    page_shift: u32,
    levels: u32,
    mapped_pages: u64,
}

impl PageTable {
    /// Creates an empty table for `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or does not leave at
    /// least one VPN bit below 48.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let page_shift = page_bytes.trailing_zeros();
        assert!(
            page_shift < ADDRESS_BITS,
            "page size must leave VPN bits in a 48-bit space"
        );
        let vpn_bits = ADDRESS_BITS - page_shift;
        PageTable {
            root: Node::default(),
            page_shift,
            levels: vpn_bits.div_ceil(LEVEL_BITS),
            mapped_pages: 0,
        }
    }

    /// Radix depth of a walk through this table.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The page size the table maps at.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// Virtual page number of a byte address.
    pub fn vpn(&self, vaddr: Addr) -> u64 {
        vaddr.raw() >> self.page_shift
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Radix slot index of `vpn` at `level` (0 = root). Levels are
    /// walked without materializing the index list: this sits on the
    /// TLB-miss path of every core.
    fn slot_at(&self, vpn: u64, level: u32) -> u32 {
        let shift = (self.levels - 1 - level) * LEVEL_BITS;
        ((vpn >> shift) & ((1 << LEVEL_BITS) - 1)) as u32
    }

    /// Installs `vpn` → `ppn`, creating interior nodes as needed.
    /// Returns `true` if the page was not mapped before.
    pub fn map(&mut self, vpn: u64, ppn: u64) -> bool {
        let levels = self.levels;
        let slot =
            |l: u32| ((vpn >> ((levels - 1 - l) * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)) as u32;
        let mut node = &mut self.root;
        for l in 0..levels - 1 {
            node = node.tables.entry(slot(l)).or_default();
        }
        let fresh = node.leaves.insert(slot(levels - 1), ppn).is_none();
        if fresh {
            self.mapped_pages += 1;
        }
        fresh
    }

    /// Looks `vpn` up without side effects.
    pub fn lookup(&self, vpn: u64) -> Option<u64> {
        let mut node = &self.root;
        for l in 0..self.levels - 1 {
            node = node.tables.get(&self.slot_at(vpn, l))?;
        }
        node.leaves
            .get(&self.slot_at(vpn, self.levels - 1))
            .copied()
    }
}

/// Charges the traversal cost of a [`PageTable`].
///
/// The walker models a hardware page-miss handler: each radix level
/// costs `latency_per_level` cycles (a pointer chase through the memory
/// hierarchy). Unmapped pages are identity-mapped on first touch —
/// the simulated OS demand-allocates, so a walk never faults.
#[derive(Clone, Copy, Debug)]
pub struct PageWalker {
    latency_per_level: Cycle,
}

/// Outcome of one page-table walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Walk {
    /// The physical page number the walk resolved to.
    pub ppn: u64,
    /// Cycles the walk took (levels × per-level latency).
    pub cycles: Cycle,
    /// Radix levels traversed.
    pub levels: u32,
}

impl PageWalker {
    /// A walker charging `latency_per_level` cycles per radix level.
    pub fn new(latency_per_level: Cycle) -> Self {
        PageWalker { latency_per_level }
    }

    /// Resolves `vaddr`'s page through `table`, identity-mapping it on
    /// first touch, and returns the charged cost.
    pub fn walk(&self, table: &mut PageTable, vaddr: Addr) -> Walk {
        let vpn = table.vpn(vaddr);
        let ppn = match table.lookup(vpn) {
            Some(p) => p,
            None => {
                table.map(vpn, vpn);
                vpn
            }
        };
        Walk {
            ppn,
            cycles: Cycle::from(table.levels()) * self.latency_per_level,
            levels: table.levels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_shrink_with_page_size() {
        assert_eq!(PageTable::new(4096).levels(), 4); // 36 VPN bits
        assert_eq!(PageTable::new(64 * 1024).levels(), 4); // 32 bits
        assert_eq!(PageTable::new(2 * 1024 * 1024).levels(), 3); // 27 bits
        assert_eq!(PageTable::new(1 << 30).levels(), 2); // 18 bits
    }

    #[test]
    fn map_lookup_roundtrip_and_remap() {
        let mut pt = PageTable::new(4096);
        assert!(pt.map(0x1234, 7));
        assert!(!pt.map(0x1234, 8), "remap is not a fresh mapping");
        assert_eq!(pt.lookup(0x1234), Some(8));
        assert_eq!(pt.lookup(0x1235), None);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distant_vpns_do_not_collide() {
        let mut pt = PageTable::new(4096);
        // Same low slot bits, different upper levels.
        let a = 0x0000_0000_0042u64;
        let b = 0x0000_0800_0042u64; // differs only above level-3 bits
        pt.map(a, 1);
        pt.map(b, 2);
        assert_eq!(pt.lookup(a), Some(1));
        assert_eq!(pt.lookup(b), Some(2));
    }

    #[test]
    fn walker_charges_per_level_and_identity_maps() {
        let mut pt = PageTable::new(4096);
        let w = PageWalker::new(25);
        let walk = w.walk(&mut pt, Addr::new(0x5000));
        assert_eq!(walk.cycles, 100);
        assert_eq!(walk.levels, 4);
        assert_eq!(walk.ppn, 5, "first touch identity-maps");
        assert_eq!(pt.lookup(5), Some(5));
        // A pre-existing (non-identity) mapping is respected.
        pt.map(9, 42);
        assert_eq!(w.walk(&mut pt, Addr::new(9 * 4096)).ppn, 42);
    }
}
