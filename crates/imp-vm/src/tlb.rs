//! A set-associative, true-LRU translation lookaside buffer.

use imp_common::{Addr, TlbStats};

/// One TLB entry: a cached VPN → PPN mapping, tagged with the page
/// shift it was installed at (a unified TLB can cache translations of
/// more than one page size; entries of different sizes never match each
/// other).
#[derive(Clone, Copy, Debug)]
struct Entry {
    vpn: u64,
    ppn: u64,
    /// Page shift this entry translates at (`vpn == vaddr >> shift`).
    shift: u32,
    /// Monotonic last-use stamp; the smallest stamp in a set is the LRU
    /// victim.
    stamp: u64,
    valid: bool,
}

const INVALID: Entry = Entry {
    vpn: 0,
    ppn: 0,
    shift: 0,
    stamp: 0,
    valid: false,
};

/// A set-associative LRU TLB caching page translations.
///
/// Addresses are split at the configured page size: the virtual page
/// number indexes a set (modulo), and a full-VPN tag match within the
/// set is a hit. Replacement is true LRU per set, tracked with a
/// monotonic use stamp. Hit/miss/eviction/cold-fill counters accumulate
/// into an [`imp_common::TlbStats`] owned by the TLB.
///
/// Entries are *size-tagged*: the `_sized` methods look up and install
/// translations at an explicit page shift, so one structure can serve
/// as a unified mixed-size TLB (the shared L2 TLB caches 4 KB and 2 MB
/// translations side by side, x86 STLB-style). The unsized methods use
/// the construction-time page size and are bit-identical to the
/// pre-mixed-size TLB when only one size is ever in play.
///
/// ```
/// use imp_vm::Tlb;
/// use imp_common::Addr;
///
/// let mut tlb = Tlb::new(2, 2, 4096);
/// assert_eq!(tlb.lookup(Addr::new(0x1234)), None); // cold miss
/// tlb.fill(Addr::new(0x1234), 0x7); // VPN 1 -> PPN 7
/// assert_eq!(tlb.lookup(Addr::new(0x1FFF)), Some(Addr::new(0x7FFF)));
/// assert_eq!(tlb.stats().hits, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Flat set-stride entry array: set `s`, way `w` lives at
    /// `s * ways + w`. Way order within a set is stable (entries never
    /// move), so LRU tie-breaks match the old per-set `Vec` layout.
    entries: Vec<Entry>,
    num_sets: usize,
    ways: usize,
    page_shift: u32,
    next_stamp: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `sets` sets of `ways` ways for `page_bytes`
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `page_bytes` is not a
    /// power of two (validate with [`crate::validate_config`] first when
    /// the values come from user configuration).
    pub fn new(sets: u32, ways: u32, page_bytes: u64) -> Self {
        assert!(sets > 0 && ways > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![INVALID; sets as usize * ways as usize],
            num_sets: sets as usize,
            ways: ways as usize,
            page_shift: page_bytes.trailing_zeros(),
            next_stamp: 1,
            stats: TlbStats::default(),
        }
    }

    /// The page size this TLB translates at.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// Virtual page number of `vaddr`.
    pub fn vpn(&self, vaddr: Addr) -> u64 {
        vaddr.raw() >> self.page_shift
    }

    /// Start of `vpn`'s set in the flat entry array.
    #[inline]
    fn set_base(&self, vpn: u64) -> usize {
        (vpn % self.num_sets as u64) as usize * self.ways
    }

    /// The ways of `vpn`'s set, in way order.
    #[inline]
    fn set_slice(&self, vpn: u64) -> &[Entry] {
        let base = self.set_base(vpn);
        &self.entries[base..base + self.ways]
    }

    /// Mutable view of the ways of `vpn`'s set, in way order.
    #[inline]
    fn set_slice_mut(&mut self, vpn: u64) -> &mut [Entry] {
        let base = self.set_base(vpn);
        &mut self.entries[base..base + self.ways]
    }

    /// Looks `vaddr` up at the default page size, updating LRU order
    /// and hit/miss counters. Returns the translated physical address
    /// on a hit.
    pub fn lookup(&mut self, vaddr: Addr) -> Option<Addr> {
        self.lookup_sized(vaddr, self.page_shift)
    }

    /// [`Tlb::lookup`] at an explicit page shift.
    pub fn lookup_sized(&mut self, vaddr: Addr, shift: u32) -> Option<Addr> {
        match self.probe_update(vaddr, shift) {
            Some(p) => {
                self.stats.hits += 1;
                Some(p)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks `vaddr` up for a prefetch at the default page size,
    /// updating LRU order and the prefetch-hit counter on a hit (misses
    /// are counted by the caller according to its translation policy).
    pub fn prefetch_lookup(&mut self, vaddr: Addr) -> Option<Addr> {
        self.prefetch_lookup_sized(vaddr, self.page_shift)
    }

    /// [`Tlb::prefetch_lookup`] at an explicit page shift.
    pub fn prefetch_lookup_sized(&mut self, vaddr: Addr, shift: u32) -> Option<Addr> {
        let hit = self.probe_update(vaddr, shift);
        if hit.is_some() {
            self.stats.prefetch_hits += 1;
        }
        hit
    }

    /// Tag-matches and refreshes LRU without touching any counter.
    #[inline]
    fn probe_update(&mut self, vaddr: Addr, shift: u32) -> Option<Addr> {
        let vpn = vaddr.raw() >> shift;
        let stamp = self.next_stamp;
        let mut ppn = None;
        for e in self.set_slice_mut(vpn) {
            if e.valid && e.vpn == vpn && e.shift == shift {
                e.stamp = stamp;
                ppn = Some(e.ppn);
                break;
            }
        }
        if ppn.is_some() {
            self.next_stamp += 1;
        }
        ppn.map(|p| crate::splice_ppn(vaddr, p, shift))
    }

    /// True if `vaddr`'s page is resident at the default page size (no
    /// LRU update, no counters).
    pub fn contains(&self, vaddr: Addr) -> bool {
        self.contains_sized(vaddr, self.page_shift)
    }

    /// [`Tlb::contains`] at an explicit page shift.
    pub fn contains_sized(&self, vaddr: Addr, shift: u32) -> bool {
        let vpn = vaddr.raw() >> shift;
        self.set_slice(vpn)
            .iter()
            .any(|e| e.valid && e.vpn == vpn && e.shift == shift)
    }

    /// Installs the mapping `vaddr`'s page → `ppn` at the default page
    /// size, evicting the LRU way when the set is full. Returns the
    /// evicted VPN, if any.
    pub fn fill(&mut self, vaddr: Addr, ppn: u64) -> Option<u64> {
        self.fill_sized(vaddr, ppn, self.page_shift)
    }

    /// [`Tlb::fill`] at an explicit page shift.
    pub fn fill_sized(&mut self, vaddr: Addr, ppn: u64, shift: u32) -> Option<u64> {
        let vpn = vaddr.raw() >> shift;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let base = self.set_base(vpn);
        let set = &mut self.entries[base..base + self.ways];
        // Refill of a resident page just refreshes it.
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn && e.shift == shift)
        {
            e.ppn = ppn;
            e.stamp = stamp;
            return None;
        }
        let (way, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.stamp } else { 0 })
            .expect("ways > 0");
        let victim = &self.entries[base + way];
        let evicted = victim.valid.then_some(victim.vpn);
        if evicted.is_some() {
            self.stats.evictions += 1;
        } else {
            self.stats.cold_fills += 1;
        }
        self.entries[base + way] = Entry {
            vpn,
            ppn,
            shift,
            stamp,
            valid: true,
        };
        evicted
    }

    /// Resident VPNs of one set, most recently used first (diagnostics
    /// and LRU-order tests).
    pub fn set_contents(&self, set: usize) -> Vec<u64> {
        let base = set * self.ways;
        let mut entries: Vec<&Entry> = self.entries[base..base + self.ways]
            .iter()
            .filter(|e| e.valid)
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.stamp));
        entries.iter().map(|e| e.vpn).collect()
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.num_sets
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Mutable counter access (the owner charges walk cycles and
    /// policy-specific prefetch counters here).
    pub fn stats_mut(&mut self) -> &mut TlbStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> Addr {
        Addr::new(n * 4096)
    }

    #[test]
    fn hit_after_fill_and_offset_preserved() {
        let mut t = Tlb::new(4, 2, 4096);
        assert_eq!(t.lookup(page(5)), None);
        t.fill(page(5), 9);
        assert_eq!(
            t.lookup(Addr::new(5 * 4096 + 0x123)),
            Some(Addr::new(9 * 4096 + 0x123))
        );
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().cold_fills, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        // One set, two ways: fill A, B; touch A; filling C must evict B.
        let mut t = Tlb::new(1, 2, 4096);
        t.fill(page(1), 1);
        t.fill(page(2), 2);
        assert!(t.lookup(page(1)).is_some());
        let evicted = t.fill(page(3), 3);
        assert_eq!(evicted, Some(2));
        assert!(t.contains(page(1)));
        assert!(!t.contains(page(2)));
        assert_eq!(t.set_contents(0), vec![3, 1]);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn sets_are_indexed_modulo_vpn() {
        let mut t = Tlb::new(4, 1, 4096);
        t.fill(page(0), 0);
        t.fill(page(4), 4); // same set as VPN 0: evicts it
        t.fill(page(1), 1); // different set: untouched
        assert!(!t.contains(page(0)));
        assert!(t.contains(page(4)));
        assert!(t.contains(page(1)));
    }

    #[test]
    fn refill_of_resident_page_does_not_evict() {
        let mut t = Tlb::new(1, 1, 4096);
        t.fill(page(7), 7);
        assert_eq!(t.fill(page(7), 8), None);
        assert_eq!(t.lookup(page(7)), Some(Addr::new(8 * 4096)));
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.stats().cold_fills, 1);
    }

    #[test]
    fn page_size_controls_vpn_split() {
        let mut t = Tlb::new(2, 2, 64 * 1024);
        t.fill(Addr::new(0), 0);
        // Any address in the same 64 KB page hits.
        assert!(t.lookup(Addr::new(60_000)).is_some());
        assert!(t.lookup(Addr::new(70_000)).is_none());
    }

    #[test]
    fn size_tagged_entries_never_cross_match() {
        // A unified TLB holding 4 KB and 2 MB entries: the same address
        // looked up at the other size is a miss, and each size splices
        // its own offset width.
        let mut t = Tlb::new(2, 2, 4096);
        let (s4k, s2m) = (12, 21);
        let a = Addr::new(5 << s2m); // 2 MB-aligned, also a 4 KB page base
        t.fill_sized(a, 5, s2m);
        assert!(t.contains_sized(a, s2m));
        assert!(!t.contains_sized(a, s4k), "sizes tag-match separately");
        assert_eq!(
            t.lookup_sized(a.offset(0x1_2345), s2m),
            Some(a.offset(0x1_2345))
        );
        assert_eq!(t.lookup_sized(a, s4k), None);
        t.fill_sized(a, 99, s4k);
        // Both entries coexist; the 4 KB one translates only its page.
        assert_eq!(
            t.lookup_sized(a.offset(0x123), s4k),
            Some(Addr::new((99 << s4k) + 0x123))
        );
        assert!(t.contains_sized(a, s2m));
    }

    #[test]
    fn prefetch_lookup_counts_separately() {
        let mut t = Tlb::new(1, 1, 4096);
        t.fill(page(1), 1);
        assert!(t.prefetch_lookup(page(1)).is_some());
        assert!(t.prefetch_lookup(page(2)).is_none());
        assert_eq!(t.stats().prefetch_hits, 1);
        assert_eq!(t.stats().hits, 0, "prefetch probes are not demand hits");
        assert_eq!(t.stats().misses, 0, "policy decides how misses count");
    }
}
