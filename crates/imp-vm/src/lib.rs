//! Virtual-memory subsystem for the IMP reproduction: per-core dTLBs, a
//! shared radix page table with a page walker, and translation policies
//! for prefetches.
//!
//! The seed simulator treated every 48-bit virtual address as directly
//! usable — no TLB, no page-table walks. That flatters value-derived
//! prefetchers like IMP most of all: `A[B[i]]` prefetches land on
//! arbitrary virtual pages and, in hardware, are only issuable after
//! address translation. This crate supplies the missing machinery:
//!
//! * [`Tlb`] — a set-associative, true-LRU TLB with hit/miss/eviction
//!   statistics and a configurable page size.
//! * [`L2Tlb`] — a *shared* second-level TLB behind the per-core
//!   dTLBs, with its own ledger; the level IMP's translation
//!   prefetching prefills for its value-derived predictions.
//! * [`PageTable`] / [`PageWalker`] — a sparse radix tree (9 index bits
//!   per level over a 48-bit space) and a walker charging either a flat
//!   per-level latency or — through a [`WalkMemory`] hook — whatever
//!   the memory hierarchy says each page-table-entry read costs;
//!   unmapped pages are identity-mapped on first touch, so translation
//!   changes *timing*, never data.
//! * [`Vm`] — the engine `imp-sim` embeds: per-core TLBs over one
//!   shared L2 TLB, table and walker, applying
//!   [`imp_common::TranslationPolicy`] to prefetch translations
//!   (`DropOnMiss` | `NonBlockingWalk` | `Ideal`) while demand
//!   translations always walk (and stall), plus the
//!   translation-prefetch port ([`Vm::prefetch_translation`]) the IMP
//!   prefetcher drives when `TlbConfig::tlb_prefetch` is on.
//! * [`PagePlacement`] — mixed 4 KB / 2 MB translation: regions a
//!   workload (or a `Sim::page_policy` override) placed on huge pages
//!   translate through per-core huge-page sub-TLBs (x86-style split
//!   dTLB, own [`TlbStats`] ledger per size), huge leaves sit one
//!   radix level up in the [`PageTable`] (one fewer PTE read per walk,
//!   also under `WalkModel::Cached`), and the shared [`L2Tlb`] caches
//!   both sizes side by side with size-tagged entries.
//!
//! Configuration lives in [`imp_common::TlbConfig`]; the default
//! [`imp_common::TlbConfig::ideal`] disables the subsystem entirely and
//! is bit-identical to the pre-`imp-vm` simulator. The defaults of the
//! newer knobs are equally conservative: no L2 TLB, no translation
//! prefetching, and [`imp_common::WalkModel::Flat`] walk timing
//! reproduce the single-level subsystem exactly.
//!
//! # Example
//!
//! ```
//! use imp_common::{Addr, TlbConfig, TranslationPolicy};
//! use imp_vm::{PrefetchTranslation, Vm};
//!
//! let cfg = TlbConfig::finite().with_policy(TranslationPolicy::DropOnMiss);
//! let mut vm = Vm::new(&cfg, 1).unwrap();
//!
//! // A demand access to a cold page pays a 4-level walk...
//! let d = vm.demand_translate(0, Addr::new(0x1_2345));
//! assert_eq!(d.walk_cycles, 4 * cfg.walk_latency);
//!
//! // ...after which the page is TLB-resident and prefetches to it fly.
//! let p = vm.prefetch_translate(0, Addr::new(0x1_2600));
//! assert!(matches!(p, PrefetchTranslation::Ready(_)));
//!
//! // A prefetch to an unseen page is dropped under DropOnMiss.
//! let p = vm.prefetch_translate(0, Addr::new(0x9_9999));
//! assert!(matches!(p, PrefetchTranslation::Dropped));
//! ```

mod l2;
mod page_table;
mod tlb;

pub use l2::L2Tlb;
pub use page_table::{
    FlatWalkMemory, PageTable, PageWalker, Walk, WalkMemory, ADDRESS_BITS, LEVEL_BITS, MAX_LEVELS,
    NODE_BYTES, PTE_BYTES, PT_BASE,
};
pub use tlb::Tlb;

use imp_common::{Addr, Cycle, TlbConfig, TlbStats, TranslationPolicy, WalkModel};
use std::fmt;

/// Why a [`TlbConfig`] cannot build a [`Vm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmConfigError {
    /// `sets` or `ways` is zero.
    EmptyTlb,
    /// Exactly one of `l2_sets` / `l2_ways` is zero (both zero disables
    /// the L2 TLB; both non-zero enables it).
    PartialL2Tlb {
        /// Configured L2 sets.
        sets: u32,
        /// Configured L2 ways.
        ways: u32,
    },
    /// The page size is not a power of two.
    PageNotPowerOfTwo(u64),
    /// The page size is smaller than a cache line (the line-granular
    /// memory system cannot split a line across pages).
    PageSmallerThanLine(u64),
    /// The page size leaves no VPN bits in a 48-bit space.
    PageTooLarge(u64),
    /// Regions were placed on huge pages, but `huge_sets` or
    /// `huge_ways` is zero — there is no huge-page sub-TLB to hold
    /// their translations.
    EmptyHugeTlb {
        /// Configured huge-page sub-TLB sets.
        sets: u32,
        /// Configured huge-page sub-TLB ways.
        ways: u32,
    },
    /// Regions were placed on huge pages, but the huge page size (one
    /// radix level above `page_bytes`) leaves no VPN bits in the
    /// 48-bit space — the page table has no level to hold huge leaves.
    HugePageTooLarge {
        /// The configured base page size.
        page_bytes: u64,
        /// The huge page size it implies.
        huge_bytes: u64,
    },
}

impl fmt::Display for VmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmConfigError::EmptyTlb => write!(f, "TLB sets and ways must be non-zero"),
            VmConfigError::PartialL2Tlb { sets, ways } => write!(
                f,
                "L2 TLB sets and ways must both be zero (disabled) or both \
                 non-zero, got {sets} sets x {ways} ways"
            ),
            VmConfigError::PageNotPowerOfTwo(b) => {
                write!(f, "page size {b} is not a power of two")
            }
            VmConfigError::PageSmallerThanLine(b) => {
                write!(f, "page size {b} is smaller than a 64-byte cache line")
            }
            VmConfigError::PageTooLarge(b) => {
                write!(f, "page size {b} leaves no page-number bits below 2^48")
            }
            VmConfigError::EmptyHugeTlb { sets, ways } => write!(
                f,
                "regions are placed on huge pages but the huge-page sub-TLB \
                 is {sets} sets x {ways} ways; both must be non-zero"
            ),
            VmConfigError::HugePageTooLarge {
                page_bytes,
                huge_bytes,
            } => write!(
                f,
                "base page size {page_bytes} implies huge pages of \
                 {huge_bytes} bytes, which leave no page-number bits below 2^48"
            ),
        }
    }
}

impl std::error::Error for VmConfigError {}

/// Validates a finite [`TlbConfig`] (an ideal config is always valid).
pub fn validate_config(cfg: &TlbConfig) -> Result<(), VmConfigError> {
    if cfg.ideal {
        return Ok(());
    }
    if cfg.sets == 0 || cfg.ways == 0 {
        return Err(VmConfigError::EmptyTlb);
    }
    if cfg.has_l2() && (cfg.l2_sets == 0 || cfg.l2_ways == 0) {
        return Err(VmConfigError::PartialL2Tlb {
            sets: cfg.l2_sets,
            ways: cfg.l2_ways,
        });
    }
    if !cfg.page_bytes.is_power_of_two() {
        return Err(VmConfigError::PageNotPowerOfTwo(cfg.page_bytes));
    }
    if cfg.page_bytes < imp_common::LINE_BYTES {
        return Err(VmConfigError::PageSmallerThanLine(cfg.page_bytes));
    }
    if cfg.page_bytes.trailing_zeros() >= ADDRESS_BITS {
        return Err(VmConfigError::PageTooLarge(cfg.page_bytes));
    }
    Ok(())
}

/// Validates a [`TlbConfig`] together with a huge-page placement: the
/// plain [`validate_config`] checks plus — when any region is actually
/// placed on huge pages — that the page-table geometry can hold huge
/// leaves and the huge-page sub-TLB exists. An empty placement adds no
/// constraints (huge-page machinery is never consulted then).
pub fn validate_placement(cfg: &TlbConfig, placement: &PagePlacement) -> Result<(), VmConfigError> {
    validate_config(cfg)?;
    if cfg.ideal || placement.is_empty() {
        return Ok(());
    }
    if cfg.page_bytes.trailing_zeros() + LEVEL_BITS >= ADDRESS_BITS {
        return Err(VmConfigError::HugePageTooLarge {
            page_bytes: cfg.page_bytes,
            huge_bytes: cfg.huge_page_bytes(),
        });
    }
    if cfg.huge_sets == 0 || cfg.huge_ways == 0 {
        return Err(VmConfigError::EmptyHugeTlb {
            sets: cfg.huge_sets,
            ways: cfg.huge_ways,
        });
    }
    Ok(())
}

/// Which virtual-address ranges are backed by huge pages: the resolved,
/// page-aligned form of the per-region [`imp_common::PagePolicy`]
/// declarations a run placed on huge pages.
///
/// Ranges are aligned outward to whole huge pages and merged, so
/// classification (`is_huge`) is a consistent total function of the
/// address — exactly how transparent huge pages behave: promoting a
/// region promotes every huge page it overlaps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PagePlacement {
    /// Sorted, disjoint half-open `[start, end)` ranges.
    ranges: Vec<(u64, u64)>,
}

impl PagePlacement {
    /// The all-base-pages placement (no address classifies huge).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a placement from raw `(base, bytes)` region extents to be
    /// backed by `huge_page_bytes` pages. Each extent is aligned
    /// outward to whole huge pages; overlapping and adjacent extents
    /// merge. Zero-length extents are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `huge_page_bytes` is not a power of two (it comes from
    /// [`TlbConfig::huge_page_bytes`], which always is).
    pub fn for_regions(
        regions: impl IntoIterator<Item = (u64, u64)>,
        huge_page_bytes: u64,
    ) -> Self {
        assert!(
            huge_page_bytes.is_power_of_two(),
            "huge page size must be a power of two"
        );
        let mask = huge_page_bytes - 1;
        let mut aligned: Vec<(u64, u64)> = regions
            .into_iter()
            .filter(|&(_, bytes)| bytes > 0)
            .map(|(base, bytes)| {
                let start = base & !mask;
                // Extents may come from an untrusted .imptrace file:
                // saturate instead of overflowing, so a region at the
                // top of the u64 space clamps to it rather than
                // wrapping into an inverted (or empty) range.
                let end = base.saturating_add(bytes).saturating_add(mask) & !mask;
                let end = if end <= start { u64::MAX } else { end };
                (start, end)
            })
            .collect();
        aligned.sort_unstable();
        let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(aligned.len());
        for (start, end) in aligned {
            match ranges.last_mut() {
                Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
                _ => ranges.push((start, end)),
            }
        }
        PagePlacement { ranges }
    }

    /// True when no range is placed on huge pages.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The resolved huge ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Whether `addr` falls in a huge-backed range.
    pub fn is_huge(&self, addr: Addr) -> bool {
        let a = addr.raw();
        let i = self.ranges.partition_point(|&(start, _)| start <= a);
        i > 0 && a < self.ranges[i - 1].1
    }
}

/// A demand translation: the physical address plus what it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandTranslation {
    /// Translated physical address.
    pub paddr: Addr,
    /// Translation cycles the access must stall for: 0 on a dTLB hit,
    /// the L2-TLB latency on an L2 hit, and L2 latency plus the full
    /// page walk on a miss of both levels.
    pub walk_cycles: Cycle,
    /// Radix levels the walk traversed (0 on a hit at either TLB
    /// level).
    pub walk_levels: u32,
}

/// Where a demand translation was resolved (derived from
/// [`DemandTranslation`]'s cost fields; observability consumers key
/// latency attribution on this instead of re-deriving the
/// cycles/levels encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslationSource {
    /// The per-core dTLB held the page: zero stall.
    DTlbHit,
    /// The shared L2 TLB held the page: the access stalled its hit
    /// latency but walked no radix levels.
    L2TlbHit,
    /// Both TLB levels missed: a full page-table walk of `levels`
    /// radix levels.
    Walk {
        /// Radix levels traversed.
        levels: u32,
    },
}

impl DemandTranslation {
    /// Classifies which structure resolved this translation.
    pub fn source(&self) -> TranslationSource {
        if self.walk_levels > 0 {
            TranslationSource::Walk {
                levels: self.walk_levels,
            }
        } else if self.walk_cycles > 0 {
            TranslationSource::L2TlbHit
        } else {
            TranslationSource::DTlbHit
        }
    }
}

/// A prefetch translation under the configured
/// [`TranslationPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchTranslation {
    /// The page was TLB-resident (or the policy is `Ideal`): issue now.
    Ready(Addr),
    /// The translation cost cycles before the prefetch may issue: the
    /// L2-TLB hit latency (`levels == 0` — the page missed the dTLB but
    /// the shared L2 TLB held it), or a full `NonBlockingWalk` page
    /// walk (`levels` radix levels traversed).
    Walked {
        /// Translated physical address.
        paddr: Addr,
        /// Cycles until the prefetch may issue.
        cycles: Cycle,
        /// Radix levels traversed (0 for an L2-TLB hit).
        levels: u32,
    },
    /// `DropOnMiss`: the prefetch dies here.
    Dropped,
}

/// Outcome of one translation-prefetch port request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationPrefetch {
    /// Cycle at which the translation is resident (equal to the request
    /// cycle when the page was already TLB-resident at either level).
    pub ready: Cycle,
    /// Radix levels walked to install it (0 when already resident).
    pub walk_levels: u32,
}

/// The virtual-memory engine: one *split* dTLB per core (a base-page
/// structure plus, when any region is placed on huge pages, an
/// x86-style huge-page sub-TLB with its own ledger) over one shared
/// unified L2 TLB (when configured), one shared page table and walker
/// (the page table is the process's; the walker models each core's
/// page-miss handler but shares the table structure).
///
/// The [`PagePlacement`] fixed at construction classifies every address
/// to exactly one page size; translations, walks, statistics and the
/// translation-prefetch port all honor it.
#[derive(Clone, Debug)]
pub struct Vm {
    tlbs: Vec<Tlb>,
    /// Huge-page sub-TLBs, one per core; empty when the placement is
    /// empty (no address ever classifies huge then).
    huge_tlbs: Vec<Tlb>,
    l2: Option<L2Tlb>,
    table: PageTable,
    walker: PageWalker,
    policy: TranslationPolicy,
    l2_latency: Cycle,
    walk_model: WalkModel,
    placement: PagePlacement,
    page_shift: u32,
}

impl Vm {
    /// Builds the engine for `cores` cores from a finite `cfg`, with
    /// every region on base pages (the pre-huge-page behavior).
    ///
    /// Callers model an *ideal* `cfg` by not building a `Vm` at all
    /// (translation is skipped entirely), so `cfg.ideal` is ignored
    /// here and the finite fields are used as given.
    ///
    /// # Errors
    ///
    /// Returns the [`VmConfigError`] describing the first invalid field.
    pub fn new(cfg: &TlbConfig, cores: usize) -> Result<Self, VmConfigError> {
        Self::with_placement(cfg, cores, PagePlacement::empty())
    }

    /// Builds the engine for `cores` cores from a finite `cfg` with the
    /// given huge-page `placement`. Addresses inside the placement's
    /// ranges translate at [`TlbConfig::huge_page_bytes`] through the
    /// per-core huge-page sub-TLBs; everything else translates at
    /// `cfg.page_bytes` exactly as before.
    ///
    /// # Errors
    ///
    /// Returns the [`VmConfigError`] describing the first invalid field
    /// (see [`validate_placement`]).
    pub fn with_placement(
        cfg: &TlbConfig,
        cores: usize,
        placement: PagePlacement,
    ) -> Result<Self, VmConfigError> {
        let mut cfg = *cfg;
        cfg.ideal = false;
        validate_placement(&cfg, &placement)?;
        let huge_cores = if placement.is_empty() { 0 } else { cores };
        Ok(Vm {
            tlbs: (0..cores)
                .map(|_| Tlb::new(cfg.sets, cfg.ways, cfg.page_bytes))
                .collect(),
            huge_tlbs: (0..huge_cores)
                .map(|_| Tlb::new(cfg.huge_sets, cfg.huge_ways, cfg.huge_page_bytes()))
                .collect(),
            l2: cfg
                .has_l2()
                .then(|| L2Tlb::new(cfg.l2_sets, cfg.l2_ways, cfg.page_bytes)),
            table: PageTable::new(cfg.page_bytes),
            walker: PageWalker::new(cfg.walk_latency),
            policy: cfg.policy,
            l2_latency: cfg.l2_latency,
            walk_model: cfg.walk_model,
            placement,
            page_shift: cfg.page_bytes.trailing_zeros(),
        })
    }

    /// The prefetch-translation policy in force.
    pub fn policy(&self) -> TranslationPolicy {
        self.policy
    }

    /// The walk-timing model in force.
    pub fn walk_model(&self) -> WalkModel {
        self.walk_model
    }

    /// Whether a shared L2 TLB is configured.
    pub fn has_l2(&self) -> bool {
        self.l2.is_some()
    }

    /// The huge-page placement this engine translates under.
    pub fn placement(&self) -> &PagePlacement {
        &self.placement
    }

    /// Whether `vaddr` translates at the huge page size.
    fn is_huge(&self, vaddr: Addr) -> bool {
        !self.huge_tlbs.is_empty() && self.placement.is_huge(vaddr)
    }

    /// The page shift `vaddr` translates at.
    fn shift_for(&self, huge: bool) -> u32 {
        if huge {
            self.page_shift + LEVEL_BITS
        } else {
            self.page_shift
        }
    }

    /// `core`'s dTLB structure for the given page size.
    fn dtlb_mut(&mut self, core: usize, huge: bool) -> &mut Tlb {
        if huge {
            &mut self.huge_tlbs[core]
        } else {
            &mut self.tlbs[core]
        }
    }

    /// Walks `vaddr`'s page (at its classified size) under the
    /// configured [`WalkModel`]: flat per-level latency, or PTE reads
    /// chained through `mem` from `now`. Huge pages walk one level
    /// fewer.
    fn walk(
        &mut self,
        core: usize,
        vaddr: Addr,
        now: Cycle,
        mem: &mut dyn WalkMemory,
        huge: bool,
    ) -> Walk {
        match (self.walk_model, huge) {
            (WalkModel::Flat, false) => self.walker.walk(&mut self.table, vaddr),
            (WalkModel::Flat, true) => self.walker.walk_huge(&mut self.table, vaddr),
            (WalkModel::Cached, false) => {
                self.walker.walk_via(&mut self.table, vaddr, core, now, mem)
            }
            (WalkModel::Cached, true) => {
                self.walker
                    .walk_via_huge(&mut self.table, vaddr, core, now, mem)
            }
        }
    }

    /// Translates a demand access for `core`, walking (and stalling)
    /// on a TLB miss; flat walk timing. Equivalent to
    /// [`Vm::demand_translate_via`] with a [`FlatWalkMemory`], which
    /// simulators with a real memory hierarchy use instead.
    pub fn demand_translate(&mut self, core: usize, vaddr: Addr) -> DemandTranslation {
        let mut flat = FlatWalkMemory(self.walker.latency_per_level());
        self.demand_translate_via(core, vaddr, 0, &mut flat)
    }

    /// Translates a demand access for `core` at cycle `now`: dTLB, then
    /// the shared L2 TLB, then a page walk whose per-level PTE reads go
    /// through `mem` (under [`WalkModel::Cached`]). Both TLB levels are
    /// filled by the walk; an L2 hit refills only the dTLB.
    pub fn demand_translate_via(
        &mut self,
        core: usize,
        vaddr: Addr,
        now: Cycle,
        mem: &mut dyn WalkMemory,
    ) -> DemandTranslation {
        let huge = self.is_huge(vaddr);
        let shift = self.shift_for(huge);
        if let Some(paddr) = self.dtlb_mut(core, huge).lookup_sized(vaddr, shift) {
            return DemandTranslation {
                paddr,
                walk_cycles: 0,
                walk_levels: 0,
            };
        }
        // The dTLB missed: the L2 TLB (when present) is probed next,
        // costing its hit latency on the way to a hit *or* a walk.
        let mut l2_probe = 0;
        if let Some(l2) = self.l2.as_mut() {
            l2_probe = self.l2_latency;
            if let Some(paddr) = l2.demand_lookup_sized(vaddr, shift) {
                let ppn = paddr.raw() >> shift;
                self.dtlb_mut(core, huge).fill_sized(vaddr, ppn, shift);
                return DemandTranslation {
                    paddr,
                    walk_cycles: l2_probe,
                    walk_levels: 0,
                };
            }
        }
        let walk = self.walk(core, vaddr, now + l2_probe, mem, huge);
        if let Some(l2) = self.l2.as_mut() {
            l2.install_sized(vaddr, walk.ppn, shift);
        }
        let tlb = self.dtlb_mut(core, huge);
        tlb.fill_sized(vaddr, walk.ppn, shift);
        let stats = tlb.stats_mut();
        stats.walk_cycles += walk.cycles;
        stats.walk_levels += u64::from(walk.levels);
        DemandTranslation {
            paddr: splice_ppn(vaddr, walk.ppn, shift),
            walk_cycles: l2_probe + walk.cycles,
            walk_levels: walk.levels,
        }
    }

    /// Translates a prefetch address for `core` under the configured
    /// policy; flat walk timing (see [`Vm::prefetch_translate_via`]).
    pub fn prefetch_translate(&mut self, core: usize, vaddr: Addr) -> PrefetchTranslation {
        let mut flat = FlatWalkMemory(self.walker.latency_per_level());
        self.prefetch_translate_via(core, vaddr, 0, &mut flat)
    }

    /// Translates a prefetch address for `core` at cycle `now` under
    /// the configured policy. A page that misses the dTLB but sits in
    /// the shared L2 TLB survives *every* policy (the translation is
    /// one level away, not a walk), delayed by the L2 hit latency; the
    /// dTLB is not refilled, so prefetch translations never displace
    /// entries the demand stream relies on. On a full miss,
    /// `NonBlockingWalk` walks through `mem` and fills both levels
    /// (possibly evicting pages demand accesses wanted — the cost of
    /// aggressive prefetch translation); `Ideal` never touches any
    /// state.
    pub fn prefetch_translate_via(
        &mut self,
        core: usize,
        vaddr: Addr,
        now: Cycle,
        mem: &mut dyn WalkMemory,
    ) -> PrefetchTranslation {
        if self.policy == TranslationPolicy::Ideal {
            return PrefetchTranslation::Ready(vaddr);
        }
        let huge = self.is_huge(vaddr);
        let shift = self.shift_for(huge);
        if let Some(paddr) = self
            .dtlb_mut(core, huge)
            .prefetch_lookup_sized(vaddr, shift)
        {
            return PrefetchTranslation::Ready(paddr);
        }
        let mut l2_probe = 0;
        if let Some(l2) = self.l2.as_mut() {
            l2_probe = self.l2_latency;
            if let Some(paddr) = l2.prefetch_probe_sized(vaddr, shift) {
                return PrefetchTranslation::Walked {
                    paddr,
                    cycles: l2_probe,
                    levels: 0,
                };
            }
        }
        match self.policy {
            TranslationPolicy::DropOnMiss => {
                self.dtlb_mut(core, huge).stats_mut().prefetch_drops += 1;
                PrefetchTranslation::Dropped
            }
            TranslationPolicy::NonBlockingWalk => {
                let walk = self.walk(core, vaddr, now + l2_probe, mem, huge);
                if let Some(l2) = self.l2.as_mut() {
                    // A prefetch-initiated install: ledgered in the
                    // L2's `prefetch_walks` (not `misses` — the probe
                    // above was a prefetch probe), keeping `evictions
                    // == misses + prefetch installs - cold_fills`.
                    l2.prefetch_install_sized(vaddr, walk.ppn, shift);
                }
                let tlb = self.dtlb_mut(core, huge);
                tlb.fill_sized(vaddr, walk.ppn, shift);
                let stats = tlb.stats_mut();
                stats.prefetch_walks += 1;
                stats.walk_cycles += walk.cycles;
                stats.walk_levels += u64::from(walk.levels);
                PrefetchTranslation::Walked {
                    paddr: splice_ppn(vaddr, walk.ppn, shift),
                    cycles: l2_probe + walk.cycles,
                    levels: walk.levels,
                }
            }
            TranslationPolicy::Ideal => unreachable!("handled above"),
        }
    }

    /// The translation-prefetch port: prefills the shared L2 TLB with
    /// the translation for `vaddr`'s page on behalf of `core`, so a
    /// later (data) prefetch to that page survives `DropOnMiss` via an
    /// L2 hit instead of dying. The walk goes through `mem` under
    /// [`WalkModel::Cached`]; its cycles and the install are ledgered
    /// on the L2 TLB (`prefetch_walks`, `walk_cycles`), never on the
    /// per-core dTLBs — the port deliberately bypasses them so
    /// speculative translations cannot displace demand entries.
    ///
    /// Without an L2 TLB configured, the port falls back to filling
    /// `core`'s dTLB (ledgered there), trading that protection for
    /// still-working translation prefetching.
    ///
    /// Under [`TranslationPolicy::Ideal`] the port is a no-op: prefetch
    /// translations are already free, so there is nothing to prefill
    /// and no walk to pay.
    ///
    /// Chained indirection (`imp:depth=N`) leans on this port twice:
    /// every data-carrying `Indirect` prefetch routes its page here
    /// when translation prefetching is on, and the chain's *frontier*
    /// hop — one past the last data hop — arrives as a
    /// translation-only request with no data fetch at all, so by the
    /// time the chase reaches that page its walk has already been
    /// paid.
    pub fn prefetch_translation(
        &mut self,
        core: usize,
        vaddr: Addr,
        now: Cycle,
        mem: &mut dyn WalkMemory,
    ) -> TranslationPrefetch {
        let huge = self.is_huge(vaddr);
        let shift = self.shift_for(huge);
        let resident = self.policy == TranslationPolicy::Ideal
            || self.dtlb(core, huge).contains_sized(vaddr, shift)
            || self
                .l2
                .as_ref()
                .is_some_and(|l2| l2.contains_sized(vaddr, shift));
        if resident {
            return TranslationPrefetch {
                ready: now,
                walk_levels: 0,
            };
        }
        let walk = self.walk(core, vaddr, now, mem, huge);
        match self.l2.as_mut() {
            Some(l2) => {
                l2.prefetch_install_sized(vaddr, walk.ppn, shift);
                let stats = l2.stats_mut();
                stats.walk_cycles += walk.cycles;
                stats.walk_levels += u64::from(walk.levels);
            }
            None => {
                let tlb = self.dtlb_mut(core, huge);
                tlb.fill_sized(vaddr, walk.ppn, shift);
                let stats = tlb.stats_mut();
                stats.prefetch_walks += 1;
                stats.walk_cycles += walk.cycles;
                stats.walk_levels += u64::from(walk.levels);
            }
        }
        TranslationPrefetch {
            ready: now + walk.cycles,
            walk_levels: walk.levels,
        }
    }

    /// `core`'s dTLB structure for the given page size (shared ref).
    fn dtlb(&self, core: usize, huge: bool) -> &Tlb {
        if huge {
            &self.huge_tlbs[core]
        } else {
            &self.tlbs[core]
        }
    }

    /// Per-core base-page TLB statistics.
    pub fn stats(&self, core: usize) -> &TlbStats {
        self.tlbs[core].stats()
    }

    /// Per-core huge-page sub-TLB statistics, when the placement put
    /// any region on huge pages.
    pub fn huge_stats(&self, core: usize) -> Option<&TlbStats> {
        self.huge_tlbs.get(core).map(Tlb::stats)
    }

    /// The shared L2 TLB's statistics, when one is configured.
    pub fn l2_stats(&self) -> Option<&TlbStats> {
        self.l2.as_ref().map(L2Tlb::stats)
    }

    /// The shared page table (diagnostics: mapped-page counts).
    pub fn page_table(&self) -> &PageTable {
        &self.table
    }
}

/// Splices `ppn` onto `vaddr`'s page offset (the one place the
/// physical-address composition lives; [`Tlb`] uses it too).
pub(crate) fn splice_ppn(vaddr: Addr, ppn: u64, page_shift: u32) -> Addr {
    let offset_mask = (1u64 << page_shift) - 1;
    Addr::new((ppn << page_shift) | (vaddr.raw() & offset_mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_source_classifies_cost_fields() {
        let t = |walk_cycles, walk_levels| DemandTranslation {
            paddr: Addr::new(0),
            walk_cycles,
            walk_levels,
        };
        assert_eq!(t(0, 0).source(), TranslationSource::DTlbHit);
        assert_eq!(t(7, 0).source(), TranslationSource::L2TlbHit);
        assert_eq!(t(400, 4).source(), TranslationSource::Walk { levels: 4 });
        // A zero-latency flat walk is still a walk (its PTE reads are
        // real traffic).
        assert_eq!(t(0, 4).source(), TranslationSource::Walk { levels: 4 });
    }

    #[test]
    fn l2_tlb_catches_dtlb_misses_and_walks_fill_both_levels() {
        // A 1-entry dTLB over a roomy L2: alternating pages thrash the
        // dTLB but, after their first walk, always hit the L2.
        let mut cfg = TlbConfig::finite().with_l2(8, 4);
        cfg.sets = 1;
        cfg.ways = 1;
        let mut vm = Vm::new(&cfg, 1).unwrap();
        let a = Addr::new(0x1_0000);
        let b = Addr::new(0x2_0000);
        assert_eq!(
            vm.demand_translate(0, a).walk_cycles,
            cfg.l2_latency + 4 * cfg.walk_latency,
            "full miss pays the L2 probe plus the walk"
        );
        assert!(vm.demand_translate(0, b).walk_cycles > 0);
        for _ in 0..3 {
            // Each re-touch misses the 1-entry dTLB, hits the L2, and
            // stalls only the L2 latency.
            assert_eq!(vm.demand_translate(0, a).walk_cycles, cfg.l2_latency);
            assert_eq!(vm.demand_translate(0, b).walk_cycles, cfg.l2_latency);
        }
        let l1 = vm.stats(0).clone();
        let l2 = vm.l2_stats().unwrap();
        assert_eq!(l1.misses, l2.hits + l2.misses, "L1 misses == L2 lookups");
        assert_eq!(l2.misses, 2, "only the two cold pages walked");
        assert_eq!(l1.walk_cycles, 2 * 4 * cfg.walk_latency);
    }

    #[test]
    fn l2_hit_rescues_prefetches_from_drop_on_miss() {
        let mut cfg = TlbConfig::finite().with_l2(8, 4);
        cfg.sets = 1;
        cfg.ways = 1;
        let mut vm = Vm::new(&cfg, 1).unwrap();
        let a = Addr::new(0x1_0000);
        let b = Addr::new(0x2_0000);
        vm.demand_translate(0, a); // a in dTLB + L2
        vm.demand_translate(0, b); // b evicts a from the dTLB; both in L2
        match vm.prefetch_translate(0, a) {
            PrefetchTranslation::Walked { cycles, levels, .. } => {
                assert_eq!(cycles, cfg.l2_latency);
                assert_eq!(levels, 0, "an L2 hit is not a walk");
            }
            other => panic!("expected an L2-hit rescue, got {other:?}"),
        }
        assert_eq!(vm.l2_stats().unwrap().prefetch_hits, 1);
        assert_eq!(vm.stats(0).prefetch_drops, 0);
        // A page in neither level still drops.
        assert_eq!(
            vm.prefetch_translate(0, Addr::new(0x9_0000)),
            PrefetchTranslation::Dropped
        );
    }

    #[test]
    fn translation_prefetch_port_installs_into_l2_only() {
        let cfg = TlbConfig::finite().with_l2(8, 4);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        let target = Addr::new(0x7_0000);
        let mut flat = FlatWalkMemory(cfg.walk_latency);
        let tp = vm.prefetch_translation(0, target, 100, &mut flat);
        assert_eq!(tp.ready, 100 + 4 * cfg.walk_latency);
        assert_eq!(tp.walk_levels, 4);
        let l2 = vm.l2_stats().unwrap();
        assert_eq!(l2.prefetch_walks, 1);
        assert_eq!(l2.walk_cycles, 4 * cfg.walk_latency);
        assert_eq!(
            vm.stats(0).lookups(),
            0,
            "the port bypasses the per-core dTLB"
        );
        // The prefill makes the page survive DropOnMiss via the L2.
        assert!(matches!(
            vm.prefetch_translate(0, target),
            PrefetchTranslation::Walked { levels: 0, .. }
        ));
        // Re-prefetching a resident page is free and walk-less.
        let again = vm.prefetch_translation(0, target, 200, &mut flat);
        assert_eq!(
            again,
            TranslationPrefetch {
                ready: 200,
                walk_levels: 0
            }
        );
        // Without an L2, the port falls back to the dTLB.
        let mut vm = Vm::new(&TlbConfig::finite(), 1).unwrap();
        vm.prefetch_translation(0, target, 0, &mut flat);
        assert_eq!(vm.stats(0).prefetch_walks, 1);
        assert_eq!(vm.demand_translate(0, target).walk_cycles, 0);
        // Under Ideal translation the port is a free no-op: prefetches
        // already translate for free, so nothing walks or installs.
        let cfg = TlbConfig::finite()
            .with_l2(8, 4)
            .with_policy(TranslationPolicy::Ideal);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        let tp = vm.prefetch_translation(0, target, 50, &mut flat);
        assert_eq!(
            tp,
            TranslationPrefetch {
                ready: 50,
                walk_levels: 0
            }
        );
        assert_eq!(vm.l2_stats().unwrap(), &TlbStats::default());
    }

    #[test]
    fn non_blocking_prefetch_walks_keep_the_l2_ledger_consistent() {
        // 1x1 L2: the second cold prefetch walk's install evicts the
        // first. Those installs are prefetch-initiated, so the ledger
        // `evictions == misses + prefetch_walks - cold_fills` must hold
        // with misses == 0.
        let cfg = TlbConfig::finite()
            .with_l2(1, 1)
            .with_policy(TranslationPolicy::NonBlockingWalk);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        vm.prefetch_translate(0, Addr::new(0x1_0000));
        vm.prefetch_translate(0, Addr::new(0x2_0000));
        let l2 = vm.l2_stats().unwrap();
        assert_eq!(l2.misses, 0, "prefetch probes are not demand misses");
        assert_eq!(l2.prefetch_walks, 2);
        assert_eq!(l2.cold_fills, 1);
        assert_eq!(
            l2.evictions,
            l2.misses + l2.prefetch_walks - l2.cold_fills,
            "ledger holds under NonBlockingWalk"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = TlbConfig::finite();
        c.sets = 0;
        assert_eq!(Vm::new(&c, 1).unwrap_err(), VmConfigError::EmptyTlb);
        let mut c = TlbConfig::finite();
        c.l2_sets = 4; // ways left at 0
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PartialL2Tlb { sets: 4, ways: 0 }
        );
        let mut c = TlbConfig::finite();
        c.page_bytes = 3000;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageNotPowerOfTwo(3000)
        );
        let mut c = TlbConfig::finite();
        c.page_bytes = 32;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageSmallerThanLine(32)
        );
        let mut c = TlbConfig::finite();
        c.page_bytes = 1 << 48;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageTooLarge(1 << 48)
        );
        assert!(validate_config(&TlbConfig::ideal()).is_ok());
    }

    #[test]
    fn placement_routes_translation_through_the_huge_sub_tlb() {
        let cfg = TlbConfig::finite();
        let huge = cfg.huge_page_bytes();
        // One huge region starting at 2 MB; everything else is base.
        let placement = PagePlacement::for_regions([(huge, 3 * huge)], huge);
        let mut vm = Vm::with_placement(&cfg, 1, placement).unwrap();

        // A huge-region demand access walks one level fewer and lands
        // in the huge ledger only.
        let ha = Addr::new(huge + 0x1234);
        let d = vm.demand_translate(0, ha);
        assert_eq!(d.paddr, ha, "identity mapping preserves addresses");
        assert_eq!(d.walk_levels, 3, "2 MB leaves sit one level up");
        assert_eq!(d.walk_cycles, 3 * cfg.walk_latency);
        let h = vm.huge_stats(0).unwrap();
        assert_eq!((h.hits, h.misses, h.walk_levels), (0, 1, 3));
        assert_eq!(vm.stats(0), &TlbStats::default(), "base ledger untouched");

        // Any address in the same 2 MB page now hits.
        assert_eq!(
            vm.demand_translate(0, Addr::new(huge + 0x1f_0000))
                .walk_cycles,
            0
        );
        assert_eq!(vm.huge_stats(0).unwrap().hits, 1);

        // A base-region access walks the full depth into the base
        // ledger; the two sub-TLBs never cross-talk.
        let d = vm.demand_translate(0, Addr::new(0x5000));
        assert_eq!(d.walk_levels, 4);
        assert_eq!(vm.stats(0).misses, 1);
        assert_eq!(vm.stats(0).walk_levels, 4);
        assert_eq!(vm.huge_stats(0).unwrap().misses, 1);
        assert_eq!(vm.page_table().mapped_huge_pages(), 1);
        assert_eq!(vm.page_table().mapped_pages(), 1);
    }

    #[test]
    fn huge_prefetches_honor_policy_and_the_port_honors_size() {
        let cfg = TlbConfig::finite().with_l2(8, 4);
        let huge = cfg.huge_page_bytes();
        let placement = PagePlacement::for_regions([(0, 4 * huge)], huge);
        let mut vm = Vm::with_placement(&cfg, 1, placement.clone()).unwrap();

        // Cold huge page under DropOnMiss: dropped, ledgered huge.
        assert_eq!(
            vm.prefetch_translate(0, Addr::new(2 * huge)),
            PrefetchTranslation::Dropped
        );
        assert_eq!(vm.huge_stats(0).unwrap().prefetch_drops, 1);

        // The translation-prefetch port walks the *huge* page (3
        // levels) and installs a size-tagged L2 entry that rescues a
        // later prefetch to anywhere in the 2 MB page.
        let mut flat = FlatWalkMemory(cfg.walk_latency);
        let tp = vm.prefetch_translation(0, Addr::new(2 * huge + 64), 100, &mut flat);
        assert_eq!(tp.walk_levels, 3);
        assert_eq!(tp.ready, 100 + 3 * cfg.walk_latency);
        let l2 = vm.l2_stats().unwrap();
        assert_eq!((l2.prefetch_walks, l2.walk_levels), (1, 3));
        assert!(matches!(
            vm.prefetch_translate(0, Addr::new(2 * huge + 0x10_0000)),
            PrefetchTranslation::Walked { levels: 0, .. }
        ));

        // NonBlockingWalk on a huge page fills the huge sub-TLB.
        let cfg = cfg.with_policy(TranslationPolicy::NonBlockingWalk);
        let mut vm = Vm::with_placement(&cfg, 1, placement).unwrap();
        match vm.prefetch_translate(0, Addr::new(3 * huge)) {
            PrefetchTranslation::Walked { cycles, levels, .. } => {
                assert_eq!(levels, 3);
                assert_eq!(cycles, cfg.l2_latency + 3 * cfg.walk_latency);
            }
            other => panic!("expected a huge walk, got {other:?}"),
        }
        assert_eq!(vm.huge_stats(0).unwrap().prefetch_walks, 1);
        assert_eq!(vm.demand_translate(0, Addr::new(3 * huge)).walk_cycles, 0);
    }

    #[test]
    fn placement_alignment_merging_and_validation() {
        let h = 1u64 << 21;
        // Unaligned, overlapping and adjacent extents merge into
        // aligned disjoint ranges; zero-length extents vanish.
        let p = PagePlacement::for_regions(
            [
                (h + 100, 50),
                (h / 2, h),
                (4 * h, h),
                (5 * h, 10),
                (9 * h, 0),
            ],
            h,
        );
        assert_eq!(p.ranges(), &[(0, 2 * h), (4 * h, 6 * h)]);
        assert!(p.is_huge(Addr::new(0)));
        assert!(p.is_huge(Addr::new(2 * h - 1)));
        assert!(!p.is_huge(Addr::new(2 * h)));
        assert!(p.is_huge(Addr::new(5 * h)));
        assert!(!p.is_huge(Addr::new(6 * h)));
        assert!(PagePlacement::empty().is_empty());

        // Extents near the top of the u64 space (possible in an
        // untrusted .imptrace) saturate instead of wrapping.
        let top = PagePlacement::for_regions([(u64::MAX - 100, 200), (0, h)], h);
        assert!(top.is_huge(Addr::new(u64::MAX - 1)));
        assert!(top.is_huge(Addr::new(0)));
        assert!(!top.is_huge(Addr::new(5 * h)));

        // A placement demands a huge-capable config: missing huge
        // sub-TLB and huge-incapable page sizes are typed errors...
        let placed = PagePlacement::for_regions([(0, h)], h);
        let bad = TlbConfig::finite().with_huge_tlb(0, 0);
        assert_eq!(
            Vm::with_placement(&bad, 1, placed.clone()).unwrap_err(),
            VmConfigError::EmptyHugeTlb { sets: 0, ways: 0 }
        );
        let mut too_big = TlbConfig::finite();
        too_big.page_bytes = 1 << 40;
        assert_eq!(
            Vm::with_placement(
                &too_big,
                1,
                PagePlacement::for_regions([(0, 1 << 50)], 1 << 49)
            )
            .unwrap_err(),
            VmConfigError::HugePageTooLarge {
                page_bytes: 1 << 40,
                huge_bytes: 1 << 49,
            }
        );
        // ...but the same configs are fine with an empty placement
        // (huge machinery never consulted).
        assert!(Vm::with_placement(&bad, 1, PagePlacement::empty()).is_ok());
        assert!(Vm::new(&too_big, 1).is_ok());
    }

    #[test]
    fn demand_walks_once_then_hits() {
        let cfg = TlbConfig::finite();
        let mut vm = Vm::new(&cfg, 2).unwrap();
        let a = Addr::new(0x12_3456);
        let first = vm.demand_translate(0, a);
        assert_eq!(first.walk_cycles, 4 * cfg.walk_latency);
        assert_eq!(first.paddr, a, "identity mapping preserves addresses");
        let second = vm.demand_translate(0, a);
        assert_eq!(second.walk_cycles, 0);
        // Core 1 has its own TLB but shares the page table.
        assert_eq!(vm.demand_translate(1, a).walk_cycles, 4 * cfg.walk_latency);
        assert_eq!(vm.page_table().mapped_pages(), 1);
        assert_eq!(vm.stats(0).misses, 1);
        assert_eq!(vm.stats(0).hits, 1);
        assert_eq!(vm.stats(0).walk_cycles, 4 * cfg.walk_latency);
    }

    #[test]
    fn prefetch_policies_differ() {
        let cold = Addr::new(0x77_0000);
        // DropOnMiss: cold prefetch dies.
        let mut vm = Vm::new(&TlbConfig::finite(), 1).unwrap();
        assert_eq!(vm.prefetch_translate(0, cold), PrefetchTranslation::Dropped);
        assert_eq!(vm.stats(0).prefetch_drops, 1);

        // NonBlockingWalk: cold prefetch walks and fills the TLB.
        let cfg = TlbConfig::finite().with_policy(TranslationPolicy::NonBlockingWalk);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        match vm.prefetch_translate(0, cold) {
            PrefetchTranslation::Walked { cycles, paddr, .. } => {
                assert_eq!(cycles, 4 * cfg.walk_latency);
                assert_eq!(paddr, cold);
            }
            other => panic!("expected a walk, got {other:?}"),
        }
        assert!(matches!(
            vm.prefetch_translate(0, cold),
            PrefetchTranslation::Ready(_)
        ));
        assert_eq!(vm.stats(0).prefetch_walks, 1);
        // The non-blocking walk primed the TLB for the demand stream.
        assert_eq!(vm.demand_translate(0, cold).walk_cycles, 0);

        // Ideal: prefetches neither walk nor fill.
        let cfg = TlbConfig::finite().with_policy(TranslationPolicy::Ideal);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        assert_eq!(
            vm.prefetch_translate(0, cold),
            PrefetchTranslation::Ready(cold)
        );
        assert_eq!(vm.stats(0).prefetch_hits, 0);
        assert!(vm.demand_translate(0, cold).walk_cycles > 0);
    }
}
