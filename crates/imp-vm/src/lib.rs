//! Virtual-memory subsystem for the IMP reproduction: per-core dTLBs, a
//! shared radix page table with a page walker, and translation policies
//! for prefetches.
//!
//! The seed simulator treated every 48-bit virtual address as directly
//! usable — no TLB, no page-table walks. That flatters value-derived
//! prefetchers like IMP most of all: `A[B[i]]` prefetches land on
//! arbitrary virtual pages and, in hardware, are only issuable after
//! address translation. This crate supplies the missing machinery:
//!
//! * [`Tlb`] — a set-associative, true-LRU TLB with hit/miss/eviction
//!   statistics and a configurable page size.
//! * [`PageTable`] / [`PageWalker`] — a sparse radix tree (9 index bits
//!   per level over a 48-bit space) and a walker charging a configurable
//!   per-level latency; unmapped pages are identity-mapped on first
//!   touch, so translation changes *timing*, never data.
//! * [`Vm`] — the engine `imp-sim` embeds: per-core TLBs over one shared
//!   table/walker, applying [`imp_common::TranslationPolicy`] to
//!   prefetch translations (`DropOnMiss` | `NonBlockingWalk` | `Ideal`)
//!   while demand translations always walk (and stall).
//!
//! Configuration lives in [`imp_common::TlbConfig`]; the default
//! [`imp_common::TlbConfig::ideal`] disables the subsystem entirely and
//! is bit-identical to the pre-`imp-vm` simulator.
//!
//! # Example
//!
//! ```
//! use imp_common::{Addr, TlbConfig, TranslationPolicy};
//! use imp_vm::{PrefetchTranslation, Vm};
//!
//! let cfg = TlbConfig::finite().with_policy(TranslationPolicy::DropOnMiss);
//! let mut vm = Vm::new(&cfg, 1).unwrap();
//!
//! // A demand access to a cold page pays a 4-level walk...
//! let d = vm.demand_translate(0, Addr::new(0x1_2345));
//! assert_eq!(d.walk_cycles, 4 * cfg.walk_latency);
//!
//! // ...after which the page is TLB-resident and prefetches to it fly.
//! let p = vm.prefetch_translate(0, Addr::new(0x1_2600));
//! assert!(matches!(p, PrefetchTranslation::Ready(_)));
//!
//! // A prefetch to an unseen page is dropped under DropOnMiss.
//! let p = vm.prefetch_translate(0, Addr::new(0x9_9999));
//! assert!(matches!(p, PrefetchTranslation::Dropped));
//! ```

mod page_table;
mod tlb;

pub use page_table::{PageTable, PageWalker, Walk, ADDRESS_BITS, LEVEL_BITS};
pub use tlb::Tlb;

use imp_common::{Addr, Cycle, TlbConfig, TlbStats, TranslationPolicy};
use std::fmt;

/// Why a [`TlbConfig`] cannot build a [`Vm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmConfigError {
    /// `sets` or `ways` is zero.
    EmptyTlb,
    /// The page size is not a power of two.
    PageNotPowerOfTwo(u64),
    /// The page size is smaller than a cache line (the line-granular
    /// memory system cannot split a line across pages).
    PageSmallerThanLine(u64),
    /// The page size leaves no VPN bits in a 48-bit space.
    PageTooLarge(u64),
}

impl fmt::Display for VmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmConfigError::EmptyTlb => write!(f, "TLB sets and ways must be non-zero"),
            VmConfigError::PageNotPowerOfTwo(b) => {
                write!(f, "page size {b} is not a power of two")
            }
            VmConfigError::PageSmallerThanLine(b) => {
                write!(f, "page size {b} is smaller than a 64-byte cache line")
            }
            VmConfigError::PageTooLarge(b) => {
                write!(f, "page size {b} leaves no page-number bits below 2^48")
            }
        }
    }
}

impl std::error::Error for VmConfigError {}

/// Validates a finite [`TlbConfig`] (an ideal config is always valid).
pub fn validate_config(cfg: &TlbConfig) -> Result<(), VmConfigError> {
    if cfg.ideal {
        return Ok(());
    }
    if cfg.sets == 0 || cfg.ways == 0 {
        return Err(VmConfigError::EmptyTlb);
    }
    if !cfg.page_bytes.is_power_of_two() {
        return Err(VmConfigError::PageNotPowerOfTwo(cfg.page_bytes));
    }
    if cfg.page_bytes < imp_common::LINE_BYTES {
        return Err(VmConfigError::PageSmallerThanLine(cfg.page_bytes));
    }
    if cfg.page_bytes.trailing_zeros() >= ADDRESS_BITS {
        return Err(VmConfigError::PageTooLarge(cfg.page_bytes));
    }
    Ok(())
}

/// A demand translation: the physical address plus what it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandTranslation {
    /// Translated physical address.
    pub paddr: Addr,
    /// Page-walk cycles the access must stall for (0 on a TLB hit).
    pub walk_cycles: Cycle,
    /// Radix levels the walk traversed (0 on a TLB hit).
    pub walk_levels: u32,
}

/// A prefetch translation under the configured
/// [`TranslationPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchTranslation {
    /// The page was TLB-resident (or the policy is `Ideal`): issue now.
    Ready(Addr),
    /// `NonBlockingWalk`: issue after `cycles` of page walking; the
    /// walk traversed `levels` radix levels.
    Walked {
        /// Translated physical address.
        paddr: Addr,
        /// Cycles until the prefetch may issue.
        cycles: Cycle,
        /// Radix levels traversed.
        levels: u32,
    },
    /// `DropOnMiss`: the prefetch dies here.
    Dropped,
}

/// The virtual-memory engine: one dTLB per core, one shared page table
/// and walker (the page table is the process's; the walker models each
/// core's page-miss handler but shares the table structure).
#[derive(Clone, Debug)]
pub struct Vm {
    tlbs: Vec<Tlb>,
    table: PageTable,
    walker: PageWalker,
    policy: TranslationPolicy,
}

impl Vm {
    /// Builds the engine for `cores` cores from a finite `cfg`.
    ///
    /// Callers model an *ideal* `cfg` by not building a `Vm` at all
    /// (translation is skipped entirely), so `cfg.ideal` is ignored
    /// here and the finite fields are used as given.
    ///
    /// # Errors
    ///
    /// Returns the [`VmConfigError`] describing the first invalid field.
    pub fn new(cfg: &TlbConfig, cores: usize) -> Result<Self, VmConfigError> {
        let mut cfg = *cfg;
        cfg.ideal = false;
        validate_config(&cfg)?;
        Ok(Vm {
            tlbs: (0..cores)
                .map(|_| Tlb::new(cfg.sets, cfg.ways, cfg.page_bytes))
                .collect(),
            table: PageTable::new(cfg.page_bytes),
            walker: PageWalker::new(cfg.walk_latency),
            policy: cfg.policy,
        })
    }

    /// The prefetch-translation policy in force.
    pub fn policy(&self) -> TranslationPolicy {
        self.policy
    }

    /// Translates a demand access for `core`, walking (and stalling)
    /// on a TLB miss. The TLB is filled by the walk.
    pub fn demand_translate(&mut self, core: usize, vaddr: Addr) -> DemandTranslation {
        if let Some(paddr) = self.tlbs[core].lookup(vaddr) {
            return DemandTranslation {
                paddr,
                walk_cycles: 0,
                walk_levels: 0,
            };
        }
        let walk = self.walker.walk(&mut self.table, vaddr);
        let tlb = &mut self.tlbs[core];
        tlb.fill(vaddr, walk.ppn);
        tlb.stats_mut().walk_cycles += walk.cycles;
        DemandTranslation {
            paddr: page_translate(vaddr, walk.ppn, self.table.page_bytes()),
            walk_cycles: walk.cycles,
            walk_levels: walk.levels,
        }
    }

    /// Translates a prefetch address for `core` under the configured
    /// policy. `NonBlockingWalk` fills the TLB (possibly evicting pages
    /// demand accesses wanted — the cost of aggressive prefetch
    /// translation); `Ideal` never touches it.
    pub fn prefetch_translate(&mut self, core: usize, vaddr: Addr) -> PrefetchTranslation {
        if self.policy == TranslationPolicy::Ideal {
            return PrefetchTranslation::Ready(vaddr);
        }
        if let Some(paddr) = self.tlbs[core].prefetch_lookup(vaddr) {
            return PrefetchTranslation::Ready(paddr);
        }
        match self.policy {
            TranslationPolicy::DropOnMiss => {
                self.tlbs[core].stats_mut().prefetch_drops += 1;
                PrefetchTranslation::Dropped
            }
            TranslationPolicy::NonBlockingWalk => {
                let walk = self.walker.walk(&mut self.table, vaddr);
                let tlb = &mut self.tlbs[core];
                tlb.fill(vaddr, walk.ppn);
                let stats = tlb.stats_mut();
                stats.prefetch_walks += 1;
                stats.walk_cycles += walk.cycles;
                PrefetchTranslation::Walked {
                    paddr: page_translate(vaddr, walk.ppn, self.table.page_bytes()),
                    cycles: walk.cycles,
                    levels: walk.levels,
                }
            }
            TranslationPolicy::Ideal => unreachable!("handled above"),
        }
    }

    /// Per-core TLB statistics.
    pub fn stats(&self, core: usize) -> &TlbStats {
        self.tlbs[core].stats()
    }

    /// The shared page table (diagnostics: mapped-page counts).
    pub fn page_table(&self) -> &PageTable {
        &self.table
    }
}

/// Splices `ppn` onto `vaddr`'s page offset (the one place the
/// physical-address composition lives; [`Tlb`] uses it too).
pub(crate) fn splice_ppn(vaddr: Addr, ppn: u64, page_shift: u32) -> Addr {
    let offset_mask = (1u64 << page_shift) - 1;
    Addr::new((ppn << page_shift) | (vaddr.raw() & offset_mask))
}

fn page_translate(vaddr: Addr, ppn: u64, page_bytes: u64) -> Addr {
    splice_ppn(vaddr, ppn, page_bytes.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = TlbConfig::finite();
        c.sets = 0;
        assert_eq!(Vm::new(&c, 1).unwrap_err(), VmConfigError::EmptyTlb);
        let mut c = TlbConfig::finite();
        c.page_bytes = 3000;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageNotPowerOfTwo(3000)
        );
        let mut c = TlbConfig::finite();
        c.page_bytes = 32;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageSmallerThanLine(32)
        );
        let mut c = TlbConfig::finite();
        c.page_bytes = 1 << 48;
        assert_eq!(
            Vm::new(&c, 1).unwrap_err(),
            VmConfigError::PageTooLarge(1 << 48)
        );
        assert!(validate_config(&TlbConfig::ideal()).is_ok());
    }

    #[test]
    fn demand_walks_once_then_hits() {
        let cfg = TlbConfig::finite();
        let mut vm = Vm::new(&cfg, 2).unwrap();
        let a = Addr::new(0x12_3456);
        let first = vm.demand_translate(0, a);
        assert_eq!(first.walk_cycles, 4 * cfg.walk_latency);
        assert_eq!(first.paddr, a, "identity mapping preserves addresses");
        let second = vm.demand_translate(0, a);
        assert_eq!(second.walk_cycles, 0);
        // Core 1 has its own TLB but shares the page table.
        assert_eq!(vm.demand_translate(1, a).walk_cycles, 4 * cfg.walk_latency);
        assert_eq!(vm.page_table().mapped_pages(), 1);
        assert_eq!(vm.stats(0).misses, 1);
        assert_eq!(vm.stats(0).hits, 1);
        assert_eq!(vm.stats(0).walk_cycles, 4 * cfg.walk_latency);
    }

    #[test]
    fn prefetch_policies_differ() {
        let cold = Addr::new(0x77_0000);
        // DropOnMiss: cold prefetch dies.
        let mut vm = Vm::new(&TlbConfig::finite(), 1).unwrap();
        assert_eq!(vm.prefetch_translate(0, cold), PrefetchTranslation::Dropped);
        assert_eq!(vm.stats(0).prefetch_drops, 1);

        // NonBlockingWalk: cold prefetch walks and fills the TLB.
        let cfg = TlbConfig::finite().with_policy(TranslationPolicy::NonBlockingWalk);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        match vm.prefetch_translate(0, cold) {
            PrefetchTranslation::Walked { cycles, paddr, .. } => {
                assert_eq!(cycles, 4 * cfg.walk_latency);
                assert_eq!(paddr, cold);
            }
            other => panic!("expected a walk, got {other:?}"),
        }
        assert!(matches!(
            vm.prefetch_translate(0, cold),
            PrefetchTranslation::Ready(_)
        ));
        assert_eq!(vm.stats(0).prefetch_walks, 1);
        // The non-blocking walk primed the TLB for the demand stream.
        assert_eq!(vm.demand_translate(0, cold).walk_cycles, 0);

        // Ideal: prefetches neither walk nor fill.
        let cfg = TlbConfig::finite().with_policy(TranslationPolicy::Ideal);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        assert_eq!(
            vm.prefetch_translate(0, cold),
            PrefetchTranslation::Ready(cold)
        );
        assert_eq!(vm.stats(0).prefetch_hits, 0);
        assert!(vm.demand_translate(0, cold).walk_cycles > 0);
    }
}
