//! The shared second-level TLB behind the per-core dTLBs.

use crate::Tlb;
use imp_common::{Addr, TlbStats};

/// A shared, set-associative second-level TLB.
///
/// One `L2Tlb` sits behind *all* per-core dTLBs: a translation that
/// misses a core's dTLB is looked up here before falling through to a
/// page-table walk, and walks fill both levels. Its capacity is what a
/// core's indirect prefetches lean on — IMP's translation prefetching
/// (`TlbConfig::tlb_prefetch`) installs predicted pages here rather
/// than polluting the small per-core dTLBs demand accesses depend on.
///
/// The ledger is the level's own [`TlbStats`]:
///
/// * `hits` / `misses` — demand lookups (by construction, per-core
///   dTLB misses == L2 lookups);
/// * `prefetch_hits` — prefetch translations rescued by the L2 after
///   missing a dTLB;
/// * `prefetch_walks` — prefetch-initiated installs through
///   [`L2Tlb::prefetch_install`] (the translation-prefetch port and
///   `NonBlockingWalk` prefetch fills alike);
/// * `evictions` / `cold_fills` — fills displace valid entries or
///   claim never-used ways, so `evictions == misses + prefetch
///   installs - cold_fills`.
///
/// ```
/// use imp_common::Addr;
/// use imp_vm::L2Tlb;
///
/// let mut l2 = L2Tlb::new(4, 2, 4096);
/// assert_eq!(l2.demand_lookup(Addr::new(0x1234)), None);
/// l2.install(Addr::new(0x1234), 0x7);
/// assert_eq!(l2.demand_lookup(Addr::new(0x1FFF)), Some(Addr::new(0x7FFF)));
/// assert_eq!(l2.stats().hits, 1);
/// assert_eq!(l2.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct L2Tlb {
    inner: Tlb,
}

impl L2Tlb {
    /// Creates a shared L2 TLB with `sets` sets of `ways` ways for
    /// `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tlb::new`]; validate a
    /// user-supplied configuration with [`crate::validate_config`]
    /// first.
    pub fn new(sets: u32, ways: u32, page_bytes: u64) -> Self {
        L2Tlb {
            inner: Tlb::new(sets, ways, page_bytes),
        }
    }

    /// Looks a demand translation up (after it missed a per-core dTLB),
    /// counting a hit or miss and refreshing LRU order.
    pub fn demand_lookup(&mut self, vaddr: Addr) -> Option<Addr> {
        self.inner.lookup(vaddr)
    }

    /// [`L2Tlb::demand_lookup`] at an explicit page shift (the L2 TLB
    /// is *unified*: 4 KB and 2 MB translations share its sets,
    /// tag-matched by size, x86 STLB-style).
    pub fn demand_lookup_sized(&mut self, vaddr: Addr, shift: u32) -> Option<Addr> {
        self.inner.lookup_sized(vaddr, shift)
    }

    /// Looks a prefetch translation up, counting only `prefetch_hits`
    /// on a hit (the caller's translation policy decides what a miss
    /// means).
    pub fn prefetch_probe(&mut self, vaddr: Addr) -> Option<Addr> {
        self.inner.prefetch_lookup(vaddr)
    }

    /// [`L2Tlb::prefetch_probe`] at an explicit page shift.
    pub fn prefetch_probe_sized(&mut self, vaddr: Addr, shift: u32) -> Option<Addr> {
        self.inner.prefetch_lookup_sized(vaddr, shift)
    }

    /// Installs the mapping `vaddr`'s page → `ppn` after a page walk.
    pub fn install(&mut self, vaddr: Addr, ppn: u64) {
        self.inner.fill(vaddr, ppn);
    }

    /// [`L2Tlb::install`] at an explicit page shift.
    pub fn install_sized(&mut self, vaddr: Addr, ppn: u64, shift: u32) {
        self.inner.fill_sized(vaddr, ppn, shift);
    }

    /// Installs a mapping on behalf of the translation-prefetch port,
    /// counting it in `prefetch_walks`.
    pub fn prefetch_install(&mut self, vaddr: Addr, ppn: u64) {
        self.inner.fill(vaddr, ppn);
        self.inner.stats_mut().prefetch_walks += 1;
    }

    /// [`L2Tlb::prefetch_install`] at an explicit page shift.
    pub fn prefetch_install_sized(&mut self, vaddr: Addr, ppn: u64, shift: u32) {
        self.inner.fill_sized(vaddr, ppn, shift);
        self.inner.stats_mut().prefetch_walks += 1;
    }

    /// True if `vaddr`'s page is resident (no LRU update, no counters).
    pub fn contains(&self, vaddr: Addr) -> bool {
        self.inner.contains(vaddr)
    }

    /// [`L2Tlb::contains`] at an explicit page shift.
    pub fn contains_sized(&self, vaddr: Addr, shift: u32) -> bool {
        self.inner.contains_sized(vaddr, shift)
    }

    /// The level's accumulated counters.
    pub fn stats(&self) -> &TlbStats {
        self.inner.stats()
    }

    /// Mutable counter access (the owner charges walk cycles of
    /// L2-initiated translation prefetches here).
    pub fn stats_mut(&mut self) -> &mut TlbStats {
        self.inner.stats_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> Addr {
        Addr::new(n * 4096)
    }

    #[test]
    fn demand_and_prefetch_paths_count_separately() {
        let mut l2 = L2Tlb::new(2, 2, 4096);
        assert_eq!(l2.demand_lookup(page(1)), None);
        l2.install(page(1), 1);
        assert!(l2.demand_lookup(page(1)).is_some());
        assert!(l2.prefetch_probe(page(1)).is_some());
        assert_eq!(l2.prefetch_probe(page(9)), None);
        let s = l2.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.prefetch_hits, 1, "prefetch probes have their own counter");
        assert_eq!(s.cold_fills, 1);
    }

    #[test]
    fn prefetch_installs_are_ledgered() {
        let mut l2 = L2Tlb::new(1, 1, 4096);
        l2.prefetch_install(page(3), 3);
        assert!(l2.contains(page(3)));
        assert_eq!(l2.stats().prefetch_walks, 1);
        assert_eq!(l2.stats().cold_fills, 1);
        // A second install displaces the first: the eviction ledger
        // includes prefetch installs.
        l2.prefetch_install(page(4), 4);
        assert_eq!(l2.stats().evictions, 1);
        assert_eq!(
            l2.stats().evictions,
            l2.stats().misses + l2.stats().prefetch_walks - l2.stats().cold_fills
        );
    }
}
