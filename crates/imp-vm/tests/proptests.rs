//! Property tests for the virtual-memory subsystem: TLB LRU order,
//! translate∘map round-trips, and the eviction/miss/cold-fill ledger.

use imp_common::{Addr, TlbConfig};
use imp_vm::{FlatWalkMemory, PagePlacement, PageTable, PageWalker, Tlb, Vm};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU model: a recency list per set, most recent first.
#[derive(Default)]
struct ModelSet {
    vpns: VecDeque<u64>,
}

impl ModelSet {
    fn touch(&mut self, vpn: u64, ways: usize) {
        if let Some(pos) = self.vpns.iter().position(|&v| v == vpn) {
            self.vpns.remove(pos);
        }
        self.vpns.push_front(vpn);
        self.vpns.truncate(ways);
    }
}

proptest! {
    /// Under an arbitrary access string, every set's residents match a
    /// reference recency-list model exactly — LRU order is preserved by
    /// hits, fills and evictions alike.
    #[test]
    fn lru_order_matches_reference_model(
        accesses in vec((0u64..48, 0u64..2), 1..200),
        ways in 1u32..5,
    ) {
        let sets = 4u32;
        let page = 4096u64;
        let mut tlb = Tlb::new(sets, ways, page);
        let mut model: Vec<ModelSet> = (0..sets).map(|_| ModelSet::default()).collect();
        for (vpn, reuse_offset) in accesses {
            // Mix page-base and mid-page addresses: both must behave
            // identically at the VPN level.
            let offset = if reuse_offset == 1 { page / 2 } else { 0 };
            let vaddr = Addr::new(vpn * page + offset);
            if tlb.lookup(vaddr).is_none() {
                tlb.fill(vaddr, vpn);
            }
            model[(vpn % u64::from(sets)) as usize].touch(vpn, ways as usize);
        }
        for (s, set_model) in model.iter().enumerate() {
            let expect: Vec<u64> = set_model.vpns.iter().copied().collect();
            prop_assert_eq!(tlb.set_contents(s), expect);
        }
    }

    /// The flat set-stride TLB matches the old per-set nested-vector
    /// stamped-LRU model it replaced, observable for observable —
    /// lookup results, fill return values (the evicted VPN), size-tagged
    /// entries, and the hit/miss/eviction/cold-fill ledger — under
    /// arbitrary mixed-size access strings.
    #[test]
    fn flat_tlb_matches_per_set_model(
        script in vec((0u64..48, 0u64..3), 1..250),
        ways in 1u32..5,
    ) {
        /// One entry of the pre-flattening representation.
        #[derive(Clone, Copy)]
        struct E { vpn: u64, ppn: u64, shift: u32, stamp: u64, valid: bool }
        let sets = 4u32;
        let mut tlb = Tlb::new(sets, ways, 4096);
        let mut model: Vec<Vec<E>> = (0..sets)
            .map(|_| vec![E { vpn: 0, ppn: 0, shift: 0, stamp: 0, valid: false }; ways as usize])
            .collect();
        let mut next_stamp = 1u64;
        let (mut hits, mut misses, mut evictions, mut cold) = (0u64, 0u64, 0u64, 0u64);
        for (vpn, action) in script {
            // Mostly 4 KB lookups; action 2 probes/installs the same
            // address space at the 2 MB shift (size-tagged entries).
            let shift = if action == 2 { 21 } else { 12 };
            let vaddr = Addr::new(vpn << shift);
            let set = (vpn % u64::from(sets)) as usize;
            // Model lookup: first way-order match refreshes its stamp.
            let model_hit = model[set]
                .iter_mut()
                .find(|e| e.valid && e.vpn == vpn && e.shift == shift)
                .map(|e| { e.stamp = next_stamp; e.ppn });
            if model_hit.is_some() { next_stamp += 1; hits += 1; } else { misses += 1; }
            let got = tlb.lookup_sized(vaddr, shift);
            prop_assert_eq!(got.map(|a| a.raw() >> shift), model_hit);
            if got.is_none() {
                // Model fill: refresh if resident, else replace the
                // first-minimal victim keyed (valid ? stamp : 0).
                let stamp = next_stamp;
                next_stamp += 1;
                let victim = model[set]
                    .iter_mut()
                    .min_by_key(|e| if e.valid { e.stamp } else { 0 })
                    .expect("ways > 0");
                let evicted = victim.valid.then_some(victim.vpn);
                if evicted.is_some() { evictions += 1; } else { cold += 1; }
                *victim = E { vpn, ppn: vpn + 7, shift, stamp, valid: true };
                prop_assert_eq!(tlb.fill_sized(vaddr, vpn + 7, shift), evicted);
            }
        }
        prop_assert_eq!(tlb.stats().hits, hits);
        prop_assert_eq!(tlb.stats().misses, misses);
        prop_assert_eq!(tlb.stats().evictions, evictions);
        prop_assert_eq!(tlb.stats().cold_fills, cold);
        // Every set's MRU-first contents must match the model's.
        for (s, model_set) in model.iter().enumerate() {
            let mut entries: Vec<&E> = model_set.iter().filter(|e| e.valid).collect();
            entries.sort_by_key(|e| std::cmp::Reverse(e.stamp));
            let expect: Vec<u64> = entries.iter().map(|e| e.vpn).collect();
            prop_assert_eq!(tlb.set_contents(s), expect);
        }
    }

    /// translate∘map round-trip: after `map(vpn, ppn)`, walking any
    /// address in the page resolves to `ppn` with the page offset
    /// preserved, for every page size.
    #[test]
    fn translate_after_map_round_trips(
        mappings in vec((0u64..(1 << 20), 0u64..(1 << 20)), 1..40),
        page_shift in 12u32..22,
        offset in 0u64..4096,
    ) {
        let page = 1u64 << page_shift;
        let mut table = PageTable::new(page);
        let walker = PageWalker::new(25);
        for &(vpn, ppn) in &mappings {
            table.map(vpn, ppn);
        }
        // Later mappings win on duplicate VPNs, exactly like a map.
        let mut last: Vec<(u64, u64)> = Vec::new();
        for &(vpn, ppn) in &mappings {
            last.retain(|&(v, _)| v != vpn);
            last.push((vpn, ppn));
        }
        for (vpn, ppn) in last {
            prop_assert_eq!(table.lookup(vpn), Some(ppn));
            let vaddr = Addr::new(vpn * page + offset % page);
            let walk = walker.walk(&mut table, vaddr);
            prop_assert_eq!(walk.ppn, ppn);
            prop_assert_eq!(walk.cycles, 25 * u64::from(table.levels()));
        }
    }

    /// Counter ledger: every miss is filled, so evictions equal fills
    /// minus cold fills — `evictions == misses - cold_fills` — and the
    /// resident count equals the cold fills capped by capacity.
    #[test]
    fn evictions_equal_misses_minus_cold_fills(
        vpns in vec(0u64..64, 1..300),
        sets in 1u32..5,
        ways in 1u32..5,
    ) {
        let mut tlb = Tlb::new(sets, ways, 4096);
        for vpn in vpns {
            let vaddr = Addr::new(vpn * 4096);
            if tlb.lookup(vaddr).is_none() {
                tlb.fill(vaddr, vpn);
            }
        }
        let s = tlb.stats().clone();
        prop_assert_eq!(s.evictions, s.misses - s.cold_fills);
        prop_assert!(s.cold_fills <= u64::from(sets * ways));
        let resident: u64 = (0..sets as usize)
            .map(|i| tlb.set_contents(i).len() as u64)
            .sum();
        // Cold fills claim empty ways, which never empty again.
        prop_assert_eq!(resident, s.cold_fills);
    }

    /// Two-level ledger: under an arbitrary demand-translation string,
    /// every dTLB miss is exactly one L2 lookup, the
    /// `evictions == misses - cold_fills` ledger holds at *both*
    /// levels, and walks happen only on misses of both.
    #[test]
    fn l2_ledger_holds_under_arbitrary_demand_streams(
        vpns in vec(0u64..96, 1..400),
        l1_sets in 1u32..4,
        l1_ways in 1u32..3,
        l2_sets in 1u32..8,
        l2_ways in 1u32..5,
    ) {
        let mut cfg = TlbConfig::finite().with_l2(l2_sets, l2_ways);
        cfg.sets = l1_sets;
        cfg.ways = l1_ways;
        let mut vm = Vm::new(&cfg, 1).unwrap();
        for &vpn in &vpns {
            vm.demand_translate(0, Addr::new(vpn * 4096));
        }
        let l1 = vm.stats(0).clone();
        let l2 = vm.l2_stats().unwrap().clone();
        prop_assert_eq!(l1.hits + l1.misses, vpns.len() as u64);
        prop_assert_eq!(l1.misses, l2.hits + l2.misses);
        prop_assert_eq!(l1.evictions, l1.misses - l1.cold_fills);
        prop_assert_eq!(l2.evictions, l2.misses - l2.cold_fills);
        // Only full misses walk, and every walk is 4 levels here.
        prop_assert_eq!(l1.walk_cycles, l2.misses * 4 * cfg.walk_latency);
        prop_assert_eq!(l1.walk_levels, l2.misses * 4);
        prop_assert_eq!(l2.walk_cycles, 0);
    }

    /// The translation-prefetch port keeps the L2 ledger consistent
    /// with prefetch installs folded in, and never touches the dTLBs.
    #[test]
    fn translation_prefetch_extends_the_l2_ledger(
        vpns in vec(0u64..64, 1..200),
        l2_sets in 1u32..4,
        l2_ways in 1u32..4,
    ) {
        let cfg = TlbConfig::finite().with_l2(l2_sets, l2_ways);
        let mut vm = Vm::new(&cfg, 1).unwrap();
        let mut flat = FlatWalkMemory(cfg.walk_latency);
        for &vpn in &vpns {
            vm.prefetch_translation(0, Addr::new(vpn * 4096), 0, &mut flat);
        }
        let l2 = vm.l2_stats().unwrap().clone();
        prop_assert_eq!(vm.stats(0).lookups(), 0);
        prop_assert_eq!(vm.stats(0).prefetch_walks, 0);
        prop_assert_eq!(l2.evictions, l2.prefetch_walks - l2.cold_fills);
        prop_assert_eq!(l2.walk_cycles, l2.prefetch_walks * 4 * cfg.walk_latency);
        prop_assert_eq!(l2.walk_levels, l2.prefetch_walks * 4);
        prop_assert!(l2.prefetch_walks <= vpns.len() as u64);
    }

    /// Mixed-size ledger: under an arbitrary demand stream over a
    /// half-huge address space, base and huge activity split cleanly
    /// (per-size ledgers, per-size walk depths), the per-set LRU
    /// ledgers hold at both sub-TLBs, and identity mapping preserves
    /// every translated address.
    #[test]
    fn split_dtlb_ledgers_hold_under_mixed_streams(
        pages in vec((0u64..64, 0u64..2), 1..300),
        huge_range_pages in 8u64..32,
    ) {
        let cfg = TlbConfig::finite();
        let huge = cfg.huge_page_bytes();
        // Base pages [0, huge_range_pages*512) stay 4 KB; the range
        // above is one huge extent.
        let placement = PagePlacement::for_regions(
            [(huge_range_pages * huge, 32 * huge)],
            huge,
        );
        let mut vm = Vm::with_placement(&cfg, 1, placement).unwrap();
        let mut expected = (0u64, 0u64); // (base, huge) lookups
        for &(page, offset_kind) in &pages {
            let offset = if offset_kind == 1 { 0x777 } else { 0 };
            let vaddr = Addr::new(page * huge / 2 + offset);
            let t = vm.demand_translate(0, vaddr);
            prop_assert_eq!(t.paddr, vaddr);
            if page * huge / 2 >= huge_range_pages * huge {
                expected.1 += 1;
                prop_assert!(t.walk_levels == 0 || t.walk_levels == 3);
            } else {
                expected.0 += 1;
                prop_assert!(t.walk_levels == 0 || t.walk_levels == 4);
            }
        }
        let base = vm.stats(0).clone();
        let huge_s = vm.huge_stats(0).unwrap().clone();
        prop_assert_eq!(base.lookups(), expected.0);
        prop_assert_eq!(huge_s.lookups(), expected.1);
        prop_assert_eq!(base.evictions, base.misses - base.cold_fills);
        prop_assert_eq!(huge_s.evictions, huge_s.misses - huge_s.cold_fills);
        prop_assert_eq!(base.walk_levels, base.misses * 4);
        prop_assert_eq!(huge_s.walk_levels, huge_s.misses * 3);
        prop_assert_eq!(base.walk_cycles, base.misses * 4 * cfg.walk_latency);
        prop_assert_eq!(huge_s.walk_cycles, huge_s.misses * 3 * cfg.walk_latency);
    }
}
