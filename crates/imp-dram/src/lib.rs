//! DRAM timing models.
//!
//! The paper (Table 1) uses two memory models: DRAMSim with DDR3
//! 10-10-10-24 timing for the main experiments, and a simple model with a
//! fixed 100 ns latency and a 10 GB/s per-controller bandwidth cap for the
//! partial-cacheline experiments (reported to agree within 5%). This crate
//! provides both:
//!
//! * [`FixedLatencyDram`] — latency + bandwidth-occupancy model,
//! * [`Ddr3Dram`] — banked model with row-buffer hits/misses and a shared
//!   data bus, standing in for DRAMSim.
//!
//! Both implement [`DramModel`] and are driven per-controller.
//!
//! # Example
//!
//! ```
//! use imp_dram::{DramModel, FixedLatencyDram};
//!
//! let mut d = FixedLatencyDram::new(100, 10.0);
//! let done = d.access(0, 0x1000, 64, false);
//! assert!(done >= 100);
//! ```

use imp_common::Cycle;

/// A per-controller DRAM timing model.
pub trait DramModel {
    /// Performs an access of `bytes` at physical byte address `addr`
    /// starting no earlier than `now`; returns the completion time.
    fn access(&mut self, now: Cycle, addr: u64, bytes: u64, is_write: bool) -> Cycle;
}

/// Simple model: fixed latency plus a bandwidth pipe.
///
/// A transfer occupies the channel for `bytes / bytes_per_cycle` cycles;
/// the access completes one `latency` after its channel slot begins.
#[derive(Debug, Clone)]
pub struct FixedLatencyDram {
    latency: Cycle,
    bytes_per_cycle: f64,
    /// Channel occupancy frontier, in fractional cycles for exactness.
    busy_until: f64,
}

impl FixedLatencyDram {
    /// Creates a model with `latency` cycles and `bytes_per_cycle`
    /// sustained bandwidth (10.0 = 10 GB/s at 1 GHz).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(latency: Cycle, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        FixedLatencyDram {
            latency,
            bytes_per_cycle,
            busy_until: 0.0,
        }
    }
}

impl DramModel for FixedLatencyDram {
    fn access(&mut self, now: Cycle, _addr: u64, bytes: u64, _is_write: bool) -> Cycle {
        let start = (now as f64).max(self.busy_until);
        let occupancy = bytes as f64 / self.bytes_per_cycle;
        self.busy_until = start + occupancy;
        (start + occupancy).ceil() as Cycle + self.latency
    }
}

/// DDR3-like timing parameters, in DRAM clock cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Ddr3Timing {
    /// CAS latency (10).
    pub t_cl: u64,
    /// RAS-to-CAS delay (10).
    pub t_rcd: u64,
    /// Row precharge time (10).
    pub t_rp: u64,
    /// Row active time (24).
    pub t_ras: u64,
    /// Banks per rank (8).
    pub banks: usize,
    /// Row-buffer size in bytes (8 KB typical).
    pub row_bytes: u64,
    /// Data bus bytes per DRAM cycle (16 for a 64-bit DDR bus).
    pub bus_bytes_per_cycle: u64,
    /// Core cycles per DRAM cycle (1.5 for DDR3-1333 under a 1 GHz core).
    pub core_cycles_per_dram_cycle: f64,
}

impl Default for Ddr3Timing {
    /// The paper's 10-10-10-24 DDR3 with 8 banks per rank.
    fn default() -> Self {
        Ddr3Timing {
            t_cl: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 24,
            banks: 8,
            row_bytes: 8192,
            bus_bytes_per_cycle: 16,
            core_cycles_per_dram_cycle: 1.5,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64, // DRAM cycles
}

/// Banked DDR3-like model: row-buffer locality, bank-level parallelism
/// and a shared data bus. First-come-first-served per arrival order
/// (the event-driven simulator naturally presents requests in time
/// order), with open-page policy.
#[derive(Debug, Clone)]
pub struct Ddr3Dram {
    t: Ddr3Timing,
    banks: Vec<Bank>,
    bus_free: u64, // DRAM cycles
}

impl Ddr3Dram {
    /// Creates a model with the given timing.
    pub fn new(t: Ddr3Timing) -> Self {
        let banks = vec![Bank::default(); t.banks];
        Ddr3Dram {
            t,
            banks,
            bus_free: 0,
        }
    }

    fn to_dram(&self, c: Cycle) -> u64 {
        (c as f64 / self.t.core_cycles_per_dram_cycle).floor() as u64
    }

    fn to_core(&self, d: u64) -> Cycle {
        (d as f64 * self.t.core_cycles_per_dram_cycle).ceil() as Cycle
    }
}

impl DramModel for Ddr3Dram {
    fn access(&mut self, now: Cycle, addr: u64, bytes: u64, _is_write: bool) -> Cycle {
        let now_d = self.to_dram(now);
        let row = addr / self.t.row_bytes;
        let bank_idx = (row as usize) % self.t.banks;
        let row_id = row / self.t.banks as u64;
        let bank = &mut self.banks[bank_idx];

        let start = now_d.max(bank.ready_at);
        let (cmd_done, hold) = match bank.open_row {
            Some(r) if r == row_id => (start + self.t.t_cl, self.t.t_cl),
            Some(_) => {
                // Precharge, activate, then CAS.
                (
                    start + self.t.t_rp + self.t.t_rcd + self.t.t_cl,
                    self.t.t_ras,
                )
            }
            None => (start + self.t.t_rcd + self.t.t_cl, self.t.t_ras),
        };
        bank.open_row = Some(row_id);
        bank.ready_at = start + hold;

        let burst = bytes.div_ceil(self.t.bus_bytes_per_cycle).max(1);
        let data_start = cmd_done.max(self.bus_free);
        let data_end = data_start + burst;
        self.bus_free = data_end;
        self.to_core(data_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_unloaded() {
        let mut d = FixedLatencyDram::new(100, 10.0);
        // 64 B at 10 B/cycle: 6.4 cycles occupancy + 100 latency.
        let done = d.access(0, 0, 64, false);
        assert_eq!(done, 107);
    }

    #[test]
    fn fixed_latency_bandwidth_saturates() {
        let mut d = FixedLatencyDram::new(100, 10.0);
        // Issue 100 back-to-back 64 B reads at time 0: the channel can move
        // 10 B/cycle, so the last must finish no earlier than 640 cycles of
        // pure transfer time.
        let mut last = 0;
        for _ in 0..100 {
            last = d.access(0, 0, 64, false);
        }
        assert!(last >= 640, "last={last}");
        assert!(
            last <= 640 + 101,
            "latency added once per access, last={last}"
        );
    }

    #[test]
    fn fixed_latency_idle_channel_recovers() {
        let mut d = FixedLatencyDram::new(100, 10.0);
        let first = d.access(0, 0, 64, false);
        // Much later, the channel is idle again: same unloaded latency.
        let later = d.access(10_000, 0, 64, false);
        assert_eq!(later - 10_000, first);
    }

    #[test]
    fn ddr3_row_hit_faster_than_miss() {
        let mut d = Ddr3Dram::new(Ddr3Timing::default());
        let cold = d.access(0, 0, 64, false);
        // Same row, much later (no queueing): row-buffer hit.
        let hit = d.access(1000, 64, 64, false) - 1000;
        // Different row, same bank: precharge + activate.
        let t = Ddr3Timing::default();
        let conflict_addr = t.row_bytes * t.banks as u64; // same bank, next row
        let miss = d.access(2000, conflict_addr, 64, false) - 2000;
        assert!(hit < cold, "hit {hit} vs cold {cold}");
        assert!(miss > hit, "miss {miss} vs hit {hit}");
    }

    #[test]
    fn ddr3_bank_parallelism_beats_single_bank() {
        let t = Ddr3Timing::default();
        // Two requests to different banks issued together finish sooner
        // than two to the same bank.
        let mut d1 = Ddr3Dram::new(t.clone());
        let conflict = t.row_bytes * t.banks as u64;
        d1.access(0, 0, 64, false);
        let same_bank = d1.access(0, conflict, 64, false);

        let mut d2 = Ddr3Dram::new(t.clone());
        d2.access(0, 0, 64, false);
        let other_bank = d2.access(0, t.row_bytes, 64, false);
        assert!(
            other_bank < same_bank,
            "other={other_bank} same={same_bank}"
        );
    }

    #[test]
    fn ddr3_partial_transfer_uses_less_bus_time() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3Dram::new(t);
        // Warm the row.
        d.access(0, 0, 64, false);
        let full = d.access(5000, 0, 64, false) - 5000;
        let half = d.access(10_000, 0, 32, false) - 10_000;
        assert!(half < full, "half={half} full={full}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = FixedLatencyDram::new(100, 0.0);
    }
}
