//! Miss Status Holding Registers: outstanding-miss tracking with merging.

use imp_common::{FastMap, LineAddr, SectorMask};

/// Outcome of an MSHR allocation attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was created; a request must be sent downstream.
    New,
    /// Merged into an existing entry for the same line whose in-flight
    /// request already covers the needed sectors.
    Merged,
    /// Merged into an existing entry, but the needed sectors extend past
    /// what is in flight; the caller must send an additional request for
    /// the returned mask.
    MergedNeedsMore(SectorMask),
    /// No free entry (structural stall).
    Full,
}

/// One in-flight miss.
#[derive(Debug)]
pub struct MshrEntry<W> {
    /// Sectors requested from downstream so far.
    pub requested: SectorMask,
    /// True while no demand access is waiting on this entry (pure
    /// prefetch). Used to classify late prefetches.
    pub prefetch_only: bool,
    /// Parties to notify on fill.
    pub waiters: Vec<W>,
}

/// A file of MSHRs keyed by line address, generic over the waiter type.
#[derive(Debug)]
pub struct MshrFile<W> {
    entries: FastMap<LineAddr, MshrEntry<W>>,
    capacity: usize,
    /// Recycled waiter vectors (see [`MshrFile::recycle_waiters`]):
    /// misses are frequent enough that reusing their buffers keeps the
    /// alloc/complete cycle heap-allocation-free in steady state.
    free_waiters: Vec<Vec<W>>,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            entries: FastMap::default(),
            capacity,
            free_waiters: Vec::new(),
        }
    }

    /// Current number of in-flight lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new line can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the in-flight entry for `line`.
    pub fn get(&self, line: LineAddr) -> Option<&MshrEntry<W>> {
        self.entries.get(&line)
    }

    /// Allocates or merges a miss on `line` needing `sectors`.
    /// `is_prefetch` marks prefetch-originated requests; a demand merge
    /// clears the entry's `prefetch_only` flag.
    pub fn alloc(
        &mut self,
        line: LineAddr,
        sectors: SectorMask,
        is_prefetch: bool,
        waiter: W,
    ) -> MshrAlloc {
        if let Some(e) = self.entries.get_mut(&line) {
            e.waiters.push(waiter);
            if !is_prefetch {
                e.prefetch_only = false;
            }
            if e.requested.contains(sectors) {
                MshrAlloc::Merged
            } else {
                let extra = sectors.minus(e.requested);
                e.requested = e.requested.union(sectors);
                MshrAlloc::MergedNeedsMore(extra)
            }
        } else if self.entries.len() >= self.capacity && is_prefetch {
            // Only prefetches are refused; demand misses always proceed
            // (hardware reserves MSHRs for demands — dropping a demand
            // would deadlock the core).
            MshrAlloc::Full
        } else {
            let mut waiters = self.free_waiters.pop().unwrap_or_default();
            waiters.push(waiter);
            self.entries.insert(
                line,
                MshrEntry {
                    requested: sectors,
                    prefetch_only: is_prefetch,
                    waiters,
                },
            );
            MshrAlloc::New
        }
    }

    /// Completes the miss on `line`, returning its entry (waiters and all).
    pub fn complete(&mut self, line: LineAddr) -> Option<MshrEntry<W>> {
        self.entries.remove(&line)
    }

    /// Returns a drained waiter vector (from [`MshrFile::complete`]) for
    /// reuse by a later [`MshrFile::alloc`].
    pub fn recycle_waiters(&mut self, mut waiters: Vec<W>) {
        waiters.clear();
        self.free_waiters.push(waiters);
    }

    /// Whether a demand access for `sectors` of `line` can be considered
    /// "in flight" (it would merge without a new downstream request).
    pub fn covers(&self, line: LineAddr, sectors: SectorMask) -> bool {
        self.entries
            .get(&line)
            .is_some_and(|e| e.requested.contains(sectors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn new_then_merge() {
        let mut f: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(
            f.alloc(line(1), SectorMask::FULL_L1, false, 10),
            MshrAlloc::New
        );
        assert_eq!(
            f.alloc(line(1), SectorMask::from_bits(1), false, 11),
            MshrAlloc::Merged
        );
        let e = f.complete(line(1)).unwrap();
        assert_eq!(e.waiters, vec![10, 11]);
        assert!(f.is_empty());
    }

    #[test]
    fn merge_extends_sectors() {
        let mut f: MshrFile<()> = MshrFile::new(2);
        f.alloc(line(1), SectorMask::from_bits(0b0011), true, ());
        match f.alloc(line(1), SectorMask::from_bits(0b0110), false, ()) {
            MshrAlloc::MergedNeedsMore(extra) => assert_eq!(extra.bits(), 0b0100),
            o => panic!("unexpected {o:?}"),
        }
        assert!(f.covers(line(1), SectorMask::from_bits(0b0111)));
        // A demand merge cleared prefetch_only.
        assert!(!f.get(line(1)).unwrap().prefetch_only);
    }

    #[test]
    fn capacity_limits_prefetches_only() {
        let mut f: MshrFile<()> = MshrFile::new(1);
        assert_eq!(
            f.alloc(line(1), SectorMask::FULL_L1, true, ()),
            MshrAlloc::New
        );
        assert_eq!(
            f.alloc(line(2), SectorMask::FULL_L1, true, ()),
            MshrAlloc::Full
        );
        assert!(f.is_full());
        // Demand misses are never structurally refused.
        assert_eq!(
            f.alloc(line(3), SectorMask::FULL_L1, false, ()),
            MshrAlloc::New
        );
        f.complete(line(1));
        f.complete(line(3));
        assert_eq!(
            f.alloc(line(2), SectorMask::FULL_L1, true, ()),
            MshrAlloc::New
        );
    }

    #[test]
    fn prefetch_only_tracking() {
        let mut f: MshrFile<()> = MshrFile::new(4);
        f.alloc(line(9), SectorMask::FULL_L1, true, ());
        assert!(f.get(line(9)).unwrap().prefetch_only);
        f.alloc(line(9), SectorMask::from_bits(1), true, ());
        assert!(f.get(line(9)).unwrap().prefetch_only);
    }
}
