//! Sectored, set-associative, write-back cache structures and MSHRs.
//!
//! Both the private L1D and the shared L2 slices of the modelled system
//! (paper Table 1) are instances of [`SectoredCache`]. When partial
//! cacheline accessing (Section 4) is enabled, lines carry per-sector
//! valid bits exactly as in Figure 7 of the paper; with full-line mode the
//! sector mask is simply always full.
//!
//! # Example
//!
//! ```
//! use imp_cache::{AccessOutcome, LineState, SectoredCache};
//! use imp_common::{Addr, LineAddr, SectorMask};
//!
//! let mut c = SectoredCache::new(1024, 4, 8); // 1 KB, 4-way, 8 sectors/line
//! let line = LineAddr::containing(Addr::new(0x40));
//! assert!(matches!(c.demand_access(line, SectorMask::FULL_L1, false), AccessOutcome::Miss));
//! c.fill(line, SectorMask::FULL_L1, LineState::Shared, false);
//! assert!(matches!(c.demand_access(line, SectorMask::FULL_L1, false), AccessOutcome::Hit { .. }));
//! ```

mod mshr;

pub use mshr::{MshrAlloc, MshrFile};

use imp_common::{LineAddr, SectorMask};

/// Coherence-visible state of a cached line (MSI; Exclusive is folded
/// into Modified as is common for simple directory protocols).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    /// Readable copy; other caches may also hold it.
    Shared,
    /// Writable, possibly dirty; this cache is the owner.
    Modified,
}

/// One cache line's bookkeeping.
#[derive(Clone, Debug)]
pub struct CacheLine {
    /// Line address (we store the full line number instead of a tag).
    pub line: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// Sectors present (always the full mask in non-sectored mode).
    pub valid: SectorMask,
    /// Sectors written locally and not yet written back.
    pub dirty: SectorMask,
    /// Line was brought in by a prefetch.
    pub prefetched: bool,
    /// Line has been touched by a demand access since fill.
    pub touched: bool,
    lru: u64,
}

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present with all needed sectors.
    Hit {
        /// The line had been prefetched and this is its first demand
        /// touch (counts toward prefetch *coverage*).
        first_touch_of_prefetch: bool,
    },
    /// Line present but some needed sectors are missing (a *sector miss*,
    /// Section 4.1).
    SectorMiss {
        /// Needed sectors not present.
        missing: SectorMask,
        /// As in [`AccessOutcome::Hit`].
        first_touch_of_prefetch: bool,
    },
    /// Line absent.
    Miss,
}

/// A line pushed out of the cache (by eviction or invalidation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Which line.
    pub line: LineAddr,
    /// Its state at eviction.
    pub state: LineState,
    /// Dirty sectors that must be written back.
    pub dirty: SectorMask,
    /// It was prefetched and never demanded (counts toward prefetch
    /// *inaccuracy*).
    pub prefetched_untouched: bool,
    /// It was prefetched and demanded at least once.
    pub prefetched_touched: bool,
    /// Valid sectors at eviction time.
    pub valid: SectorMask,
    /// It had been touched by demand at least once (any origin).
    pub touched: bool,
}

/// Tag-lane sentinel marking a free way (no real line number reaches
/// `u64::MAX`: line numbers are addresses shifted right by the line
/// size).
const EMPTY_TAG: u64 = u64::MAX;

/// A sectored, set-associative, write-back cache with LRU replacement.
///
/// Storage is two flat set-stride arrays instead of per-set vectors:
/// `tags[s * ways + w]` holds the line number resident in way `w` of
/// set `s` (or `EMPTY_TAG`), and `lines` holds the matching
/// bookkeeping at the same index. A lookup scans the set's contiguous
/// tag lane — one cache-friendly pass over at most `ways` words — and
/// touches the wide metadata only for the way that matched.
#[derive(Debug)]
pub struct SectoredCache {
    /// Line-number tags, set-stride (`set * ways + way`); [`EMPTY_TAG`]
    /// marks a free way.
    tags: Vec<u64>,
    /// Per-way bookkeeping, parallel to `tags`; meaningful only where
    /// the tag is not [`EMPTY_TAG`].
    lines: Vec<CacheLine>,
    num_sets: usize,
    ways: usize,
    sectors: u32,
    stamp: u64,
}

impl SectoredCache {
    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `sectors` sectors per 64-byte line (1 disables sectoring).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield at least one set.
    pub fn new(size_bytes: u64, ways: u32, sectors: u32) -> Self {
        let lines = size_bytes / imp_common::LINE_BYTES;
        let sets = (lines / u64::from(ways)).max(1) as usize;
        let slots = sets * ways as usize;
        let placeholder = CacheLine {
            line: LineAddr::from_line_number(0),
            state: LineState::Shared,
            valid: SectorMask::EMPTY,
            dirty: SectorMask::EMPTY,
            prefetched: false,
            touched: false,
            lru: 0,
        };
        SectoredCache {
            tags: vec![EMPTY_TAG; slots],
            lines: vec![placeholder; slots],
            num_sets: sets,
            ways: ways as usize,
            sectors,
            stamp: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Sectors per line.
    pub fn sectors(&self) -> u32 {
        self.sectors
    }

    /// Full sector mask for this cache's sectoring.
    pub fn full_mask(&self) -> SectorMask {
        SectorMask::full(self.sectors)
    }

    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        (line.number() % self.num_sets as u64) as usize * self.ways
    }

    /// Slot index of `line` if resident: a linear scan of the set's
    /// contiguous tag lane.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_base(line);
        let tag = line.number();
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|w| base + w)
    }

    /// Non-updating probe.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> Option<&CacheLine> {
        self.find(line).map(|i| &self.lines[i])
    }

    #[inline]
    fn find_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        self.find(line).map(|i| &mut self.lines[i])
    }

    /// Performs a demand access needing `need` sectors; `write` marks the
    /// touched sectors dirty on a hit. Updates LRU and touch state.
    pub fn demand_access(
        &mut self,
        line: LineAddr,
        need: SectorMask,
        write: bool,
    ) -> AccessOutcome {
        self.stamp += 1;
        let stamp = self.stamp;
        let full = self.full_mask();
        let need = need.intersect(full);
        match self.find_mut(line) {
            None => AccessOutcome::Miss,
            Some(l) => {
                l.lru = stamp;
                let first_touch = l.prefetched && !l.touched;
                l.touched = true;
                if l.valid.contains(need) {
                    if write {
                        l.dirty = l.dirty.union(need);
                    }
                    AccessOutcome::Hit {
                        first_touch_of_prefetch: first_touch,
                    }
                } else {
                    AccessOutcome::SectorMiss {
                        missing: need.minus(l.valid),
                        first_touch_of_prefetch: first_touch,
                    }
                }
            }
        }
    }

    /// Installs `sectors` of `line` in `state`; merges into an existing
    /// line or allocates (possibly evicting). Returns the evicted line.
    pub fn fill(
        &mut self,
        line: LineAddr,
        sectors: SectorMask,
        state: LineState,
        prefetched: bool,
    ) -> Option<Evicted> {
        self.stamp += 1;
        let stamp = self.stamp;
        let full = self.full_mask();
        let sectors = sectors.intersect(full);
        if let Some(l) = self.find_mut(line) {
            l.valid = l.valid.union(sectors);
            if state == LineState::Modified {
                l.state = LineState::Modified;
            }
            l.lru = stamp;
            return None;
        }
        let base = self.set_base(line);
        let set_tags = &self.tags[base..base + self.ways];
        // First free way, else the LRU victim (stamps are unique, so
        // the victim choice is order-independent).
        let (slot, evicted) = match set_tags.iter().position(|&t| t == EMPTY_TAG) {
            Some(w) => (base + w, None),
            None => {
                let (w, _) = self.lines[base..base + self.ways]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .expect("ways > 0");
                let v = &self.lines[base + w];
                (
                    base + w,
                    Some(Evicted {
                        line: v.line,
                        state: v.state,
                        dirty: v.dirty,
                        prefetched_untouched: v.prefetched && !v.touched,
                        prefetched_touched: v.prefetched && v.touched,
                        valid: v.valid,
                        touched: v.touched,
                    }),
                )
            }
        };
        self.tags[slot] = line.number();
        self.lines[slot] = CacheLine {
            line,
            state,
            valid: sectors,
            dirty: SectorMask::EMPTY,
            prefetched,
            touched: false,
            lru: stamp,
        };
        evicted
    }

    /// Marks sectors of a present line dirty (after a write fill).
    pub fn mark_dirty(&mut self, line: LineAddr, sectors: SectorMask) {
        let full = self.full_mask();
        if let Some(l) = self.find_mut(line) {
            l.dirty = l.dirty.union(sectors.intersect(full));
            l.state = LineState::Modified;
        }
    }

    /// Removes `line`, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let idx = self.find(line)?;
        self.tags[idx] = EMPTY_TAG;
        let v = &self.lines[idx];
        Some(Evicted {
            line: v.line,
            state: v.state,
            dirty: v.dirty,
            prefetched_untouched: v.prefetched && !v.touched,
            prefetched_touched: v.prefetched && v.touched,
            valid: v.valid,
            touched: v.touched,
        })
    }

    /// Downgrades a Modified line to Shared, returning the sectors that
    /// were dirty (now considered written back).
    pub fn downgrade(&mut self, line: LineAddr) -> SectorMask {
        match self.find_mut(line) {
            Some(l) => {
                l.state = LineState::Shared;
                std::mem::replace(&mut l.dirty, SectorMask::EMPTY)
            }
            None => SectorMask::EMPTY,
        }
    }

    /// Number of resident lines (for tests and occupancy stats).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }

    /// Iterates over all resident lines.
    pub fn iter_lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.tags
            .iter()
            .zip(&self.lines)
            .filter(|(&t, _)| t != EMPTY_TAG)
            .map(|(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::Addr;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    fn small() -> SectoredCache {
        // 4 sets x 2 ways.
        SectoredCache::new(8 * 64, 2, 8)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(
            c.demand_access(line(1), SectorMask::FULL_L1, false),
            AccessOutcome::Miss
        );
        assert!(c
            .fill(line(1), SectorMask::FULL_L1, LineState::Shared, false)
            .is_none());
        assert!(matches!(
            c.demand_access(line(1), SectorMask::FULL_L1, false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: false
            }
        ));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.fill(line(0), SectorMask::FULL_L1, LineState::Shared, false);
        c.fill(line(4), SectorMask::FULL_L1, LineState::Shared, false);
        // Touch line 0 so line 4 is LRU.
        c.demand_access(line(0), SectorMask::FULL_L1, false);
        let ev = c
            .fill(line(8), SectorMask::FULL_L1, LineState::Shared, false)
            .unwrap();
        assert_eq!(ev.line, line(4));
        assert!(c.probe(line(0)).is_some());
        assert!(c.probe(line(4)).is_none());
    }

    #[test]
    fn sector_miss_reports_missing() {
        let mut c = small();
        c.fill(
            line(3),
            SectorMask::from_bits(0b0000_1111),
            LineState::Shared,
            true,
        );
        match c.demand_access(line(3), SectorMask::from_bits(0b0011_0000), false) {
            AccessOutcome::SectorMiss {
                missing,
                first_touch_of_prefetch,
            } => {
                assert_eq!(missing.bits(), 0b0011_0000);
                assert!(first_touch_of_prefetch);
            }
            o => panic!("expected sector miss, got {o:?}"),
        }
        // Partial fill of the missing sectors completes the line region.
        c.fill(
            line(3),
            SectorMask::from_bits(0b0011_0000),
            LineState::Shared,
            false,
        );
        assert!(matches!(
            c.demand_access(line(3), SectorMask::from_bits(0b0011_1111), false),
            AccessOutcome::Hit { .. }
        ));
    }

    #[test]
    fn write_marks_dirty_and_writeback_on_evict() {
        let mut c = small();
        c.fill(line(0), SectorMask::FULL_L1, LineState::Modified, false);
        c.demand_access(line(0), SectorMask::from_bits(0b1), true);
        c.fill(line(4), SectorMask::FULL_L1, LineState::Shared, false);
        let ev = c
            .fill(line(8), SectorMask::FULL_L1, LineState::Shared, false)
            .unwrap();
        assert_eq!(ev.line, line(0));
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(ev.dirty.bits(), 0b1);
    }

    #[test]
    fn prefetch_accuracy_tracking() {
        let mut c = small();
        c.fill(line(0), SectorMask::FULL_L1, LineState::Shared, true);
        c.fill(line(4), SectorMask::FULL_L1, LineState::Shared, true);
        // Touch line 0 only.
        assert!(matches!(
            c.demand_access(line(0), SectorMask::from_bits(1), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: true
            }
        ));
        // Second touch is no longer a first touch.
        assert!(matches!(
            c.demand_access(line(0), SectorMask::from_bits(1), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: false
            }
        ));
        let ev0 = c.invalidate(line(0)).unwrap();
        assert!(ev0.prefetched_touched && !ev0.prefetched_untouched);
        let ev4 = c.invalidate(line(4)).unwrap();
        assert!(ev4.prefetched_untouched && !ev4.prefetched_touched);
    }

    #[test]
    fn downgrade_returns_dirty_sectors() {
        let mut c = small();
        c.fill(line(2), SectorMask::FULL_L1, LineState::Modified, false);
        c.demand_access(line(2), SectorMask::from_bits(0b11), true);
        let dirty = c.downgrade(line(2));
        assert_eq!(dirty.bits(), 0b11);
        assert_eq!(c.probe(line(2)).unwrap().state, LineState::Shared);
        assert_eq!(c.probe(line(2)).unwrap().dirty.bits(), 0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = small();
        for n in 0..100 {
            c.fill(line(n), SectorMask::FULL_L1, LineState::Shared, false);
            assert!(c.resident_lines() <= 8);
            for set in 0..c.num_sets() {
                let in_set = c
                    .iter_lines()
                    .filter(|l| l.line.number() % 4 == set as u64)
                    .count();
                assert!(in_set <= 2);
            }
        }
    }

    #[test]
    fn l1_geometry_from_table1() {
        // 32 KB, 4-way, 64 B lines => 128 sets.
        let c = SectoredCache::new(32 * 1024, 4, 8);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn access_to_addr_mask_integration() {
        let mut c = SectoredCache::new(32 * 1024, 4, 8);
        let a = Addr::new(0x1238);
        let l = LineAddr::containing(a);
        let m = SectorMask::l1_touch(a, 8);
        c.fill(l, m, LineState::Shared, false);
        assert!(matches!(
            c.demand_access(l, m, false),
            AccessOutcome::Hit { .. }
        ));
        // A different sector of the same line misses.
        let m2 = SectorMask::l1_touch(a.offset(16), 8);
        assert!(matches!(
            c.demand_access(l, m2, false),
            AccessOutcome::SectorMiss { .. }
        ));
    }
}
