//! Property tests: the sectored cache never violates its geometry and
//! behaves like a cache (present after fill, absent after invalidate) —
//! and the flat set-stride tag arrays behave exactly like the original
//! per-set nested-vector LRU model they replaced.

use imp_cache::{AccessOutcome, Evicted, LineState, SectoredCache};
use imp_common::{LineAddr, SectorMask};
use proptest::prelude::*;

/// The pre-flattening reference: per-set growable vectors with
/// `push` / `swap_remove` occupancy and a min-LRU victim scan, exactly
/// as `SectoredCache` stored lines before the set-stride refactor.
struct ModelLine {
    line: u64,
    state: LineState,
    valid: u8,
    dirty: u8,
    prefetched: bool,
    touched: bool,
    lru: u64,
}

struct ModelCache {
    sets: Vec<Vec<ModelLine>>,
    ways: usize,
    stamp: u64,
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> Self {
        ModelCache {
            sets: (0..sets).map(|_| Vec::new()).collect(),
            ways,
            stamp: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    fn evicted(l: &ModelLine) -> Evicted {
        Evicted {
            line: LineAddr::from_line_number(l.line),
            state: l.state,
            dirty: SectorMask::from_bits(l.dirty),
            prefetched_untouched: l.prefetched && !l.touched,
            prefetched_touched: l.prefetched && l.touched,
            valid: SectorMask::from_bits(l.valid),
            touched: l.touched,
        }
    }

    fn fill(&mut self, line: u64, mask: u8, state: LineState, prefetched: bool) -> Option<Evicted> {
        self.stamp += 1;
        let stamp = self.stamp;
        let si = self.set_of(line);
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.line == line) {
            l.valid |= mask;
            if state == LineState::Modified {
                l.state = LineState::Modified;
            }
            l.lru = stamp;
            return None;
        }
        let evicted = if set.len() < self.ways {
            None
        } else {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let v = set.swap_remove(vi);
            Some(Self::evicted(&v))
        };
        set.push(ModelLine {
            line,
            state,
            valid: mask,
            dirty: 0,
            prefetched,
            touched: false,
            lru: stamp,
        });
        evicted
    }

    fn demand_access(&mut self, line: u64, need: u8, write: bool) -> AccessOutcome {
        self.stamp += 1;
        let stamp = self.stamp;
        let si = self.set_of(line);
        match self.sets[si].iter_mut().find(|l| l.line == line) {
            None => AccessOutcome::Miss,
            Some(l) => {
                l.lru = stamp;
                let first_touch = l.prefetched && !l.touched;
                l.touched = true;
                if l.valid & need == need {
                    if write {
                        l.dirty |= need;
                    }
                    AccessOutcome::Hit {
                        first_touch_of_prefetch: first_touch,
                    }
                } else {
                    AccessOutcome::SectorMiss {
                        missing: SectorMask::from_bits(need & !l.valid),
                        first_touch_of_prefetch: first_touch,
                    }
                }
            }
        }
    }

    fn invalidate(&mut self, line: u64) -> Option<Evicted> {
        let si = self.set_of(line);
        let set = &mut self.sets[si];
        let idx = set.iter().position(|l| l.line == line)?;
        let v = set.swap_remove(idx);
        Some(Self::evicted(&v))
    }

    fn resident(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.sets.iter().flatten().map(|l| l.line).collect();
        v.sort_unstable();
        v
    }
}

proptest! {
    /// Capacity and associativity are never exceeded under arbitrary
    /// fill/access/invalidate sequences.
    #[test]
    fn geometry_invariants(ops in proptest::collection::vec((0u8..3, 0u64..64, any::<u8>()), 1..200)) {
        let mut c = SectoredCache::new(16 * 64, 4, 8); // 4 sets x 4 ways
        for (op, line, mask) in ops {
            let line = LineAddr::from_line_number(line);
            let mask = SectorMask::from_bits(mask | 1);
            match op {
                0 => { c.fill(line, mask, LineState::Shared, false); }
                1 => { c.demand_access(line, mask, false); }
                _ => { c.invalidate(line); }
            }
            prop_assert!(c.resident_lines() <= 16);
            for set in 0..4u64 {
                let n = c.iter_lines().filter(|l| l.line.number() % 4 == set).count();
                prop_assert!(n <= 4, "set {set} has {n} ways");
            }
        }
    }

    /// The flat set-stride cache matches the old per-set nested-vector
    /// LRU model observable-for-observable under arbitrary
    /// fill/access/invalidate scripts: same outcomes, same evictions,
    /// same resident lines.
    #[test]
    fn flat_arrays_match_per_set_model(
        script in proptest::collection::vec((0u8..4, 0u64..24, any::<u8>()), 1..250)
    ) {
        // 4 sets x 4 ways over 24 distinct lines: plenty of conflict.
        let mut flat = SectoredCache::new(16 * 64, 4, 8);
        let mut model = ModelCache::new(4, 4);
        for (op, line, mask) in script {
            let ln = LineAddr::from_line_number(line);
            let mask = mask | 1;
            match op {
                0 => {
                    let got = flat.fill(ln, SectorMask::from_bits(mask), LineState::Shared, false);
                    prop_assert_eq!(got, model.fill(line, mask, LineState::Shared, false));
                }
                1 => {
                    // Prefetched Modified fill: exercises state merge and
                    // the prefetched/touched eviction bookkeeping.
                    let got = flat.fill(ln, SectorMask::from_bits(mask), LineState::Modified, true);
                    prop_assert_eq!(got, model.fill(line, mask, LineState::Modified, true));
                }
                2 => {
                    let write = mask & 2 != 0;
                    let got = flat.demand_access(ln, SectorMask::from_bits(mask), write);
                    prop_assert_eq!(got, model.demand_access(line, mask, write));
                }
                _ => {
                    prop_assert_eq!(flat.invalidate(ln), model.invalidate(line));
                }
            }
            prop_assert_eq!(flat.resident_lines(), model.resident().len());
            let mut resident: Vec<u64> = flat.iter_lines().map(|l| l.line.number()).collect();
            resident.sort_unstable();
            prop_assert_eq!(resident, model.resident());
        }
    }

    /// A fill makes exactly the filled sectors visible; valid masks only
    /// grow under further fills.
    #[test]
    fn fills_are_monotone(masks in proptest::collection::vec(1u8..=255, 1..10)) {
        let mut c = SectoredCache::new(16 * 64, 4, 8);
        let line = LineAddr::from_line_number(5);
        let mut acc = 0u8;
        for m in masks {
            c.fill(line, SectorMask::from_bits(m), LineState::Shared, false);
            acc |= m;
            let l = c.probe(line).unwrap();
            prop_assert_eq!(l.valid.bits(), acc);
            // Everything accumulated so far must hit.
            match c.demand_access(line, SectorMask::from_bits(acc), false) {
                AccessOutcome::Hit { .. } => {}
                o => prop_assert!(false, "expected hit, got {o:?}"),
            }
        }
    }
}
