//! Property tests: the sectored cache never violates its geometry and
//! behaves like a cache (present after fill, absent after invalidate).

use imp_cache::{AccessOutcome, LineState, SectoredCache};
use imp_common::{LineAddr, SectorMask};
use proptest::prelude::*;

proptest! {
    /// Capacity and associativity are never exceeded under arbitrary
    /// fill/access/invalidate sequences.
    #[test]
    fn geometry_invariants(ops in proptest::collection::vec((0u8..3, 0u64..64, any::<u8>()), 1..200)) {
        let mut c = SectoredCache::new(16 * 64, 4, 8); // 4 sets x 4 ways
        for (op, line, mask) in ops {
            let line = LineAddr::from_line_number(line);
            let mask = SectorMask::from_bits(mask | 1);
            match op {
                0 => { c.fill(line, mask, LineState::Shared, false); }
                1 => { c.demand_access(line, mask, false); }
                _ => { c.invalidate(line); }
            }
            prop_assert!(c.resident_lines() <= 16);
            for set in 0..4u64 {
                let n = c.iter_lines().filter(|l| l.line.number() % 4 == set).count();
                prop_assert!(n <= 4, "set {set} has {n} ways");
            }
        }
    }

    /// A fill makes exactly the filled sectors visible; valid masks only
    /// grow under further fills.
    #[test]
    fn fills_are_monotone(masks in proptest::collection::vec(1u8..=255, 1..10)) {
        let mut c = SectoredCache::new(16 * 64, 4, 8);
        let line = LineAddr::from_line_number(5);
        let mut acc = 0u8;
        for m in masks {
            c.fill(line, SectorMask::from_bits(m), LineState::Shared, false);
            acc |= m;
            let l = c.probe(line).unwrap();
            prop_assert_eq!(l.valid.bits(), acc);
            // Everything accumulated so far must hit.
            match c.demand_access(line, SectorMask::from_bits(acc), false) {
                AccessOutcome::Hit { .. } => {}
                o => prop_assert!(false, "expected hit, got {o:?}"),
            }
        }
    }
}
