//! 2-D mesh network-on-chip model.
//!
//! Matches the paper's Table 1: an N-tile mesh (sqrt(N) x sqrt(N)) with
//! X-Y dimension-ordered routing, a 2-cycle hop latency (1 router +
//! 1 link) and 64-bit flits. Links are modelled as resources with a
//! next-free time, giving both zero-load latency and bandwidth contention;
//! traffic is accounted in flit-hops (the metric behind Figure 12).
//!
//! Memory controllers are placed in a "diamond"-style diagonal pattern
//! (one per row and column), following the placement study the paper cites
//! for uniform traffic distribution on meshes with X-Y routing.
//!
//! # Example
//!
//! ```
//! use imp_noc::Mesh;
//!
//! let mut mesh = Mesh::new(8, 2, 8); // 64 tiles, 2-cycle hops, 8 B flits
//! let (arrival, flit_hops) = mesh.send(0, 63, 64, 1000);
//! assert!(arrival > 1000);
//! assert!(flit_hops > 0);
//! ```

use imp_common::Cycle;

/// Direction of a mesh link leaving a tile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// A 2-D mesh with X-Y routing and per-link contention.
#[derive(Debug)]
pub struct Mesh {
    side: u32,
    hop_latency: Cycle,
    flit_bytes: u64,
    /// next-free time for each directed link, indexed `tile * 4 + dir`.
    link_free: Vec<Cycle>,
    /// Cumulative flit-hops (traffic metric).
    flit_hops: u64,
    /// Messages sent.
    messages: u64,
}

impl Mesh {
    /// Creates a `side x side` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn new(side: u32, hop_latency: Cycle, flit_bytes: u64) -> Self {
        assert!(side > 0, "mesh side must be positive");
        Mesh {
            side,
            hop_latency,
            flit_bytes,
            link_free: vec![0; (side * side * 4) as usize],
            flit_hops: 0,
            messages: 0,
        }
    }

    /// Mesh side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Number of tiles.
    pub fn tiles(&self) -> u32 {
        self.side * self.side
    }

    /// (x, y) coordinates of a tile id.
    pub fn coords(&self, tile: u32) -> (u32, u32) {
        (tile % self.side, tile / self.side)
    }

    /// Tile id at (x, y).
    pub fn tile_at(&self, x: u32, y: u32) -> u32 {
        y * self.side + x
    }

    /// Manhattan hop count between two tiles.
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// Number of flits for a message with `payload_bytes` of data:
    /// one header flit plus the payload.
    pub fn flits_for(&self, payload_bytes: u64) -> u64 {
        1 + payload_bytes.div_ceil(self.flit_bytes)
    }

    /// Visits the directed links of the X-Y route from `src` to `dst`
    /// in traversal order. The route is deterministic, so `send` charges
    /// link occupancy inline through this walk instead of materializing
    /// a path vector per message.
    #[inline]
    fn walk_route(&self, src: u32, dst: u32, mut f: impl FnMut(usize)) {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        while x != dx {
            let dir = if dx > x { Dir::East } else { Dir::West };
            f((self.tile_at(x, y) * 4) as usize + dir.index());
            if dx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if dy > y { Dir::South } else { Dir::North };
            f((self.tile_at(x, y) * 4) as usize + dir.index());
            if dy > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
    }

    /// The sequence of directed links an X-Y-routed message traverses.
    #[cfg(test)]
    fn route(&self, src: u32, dst: u32) -> Vec<usize> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut links = Vec::with_capacity(self.hops(src, dst) as usize);
        while x != dx {
            let dir = if dx > x { Dir::East } else { Dir::West };
            links.push((self.tile_at(x, y) * 4) as usize + dir.index());
            if dx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if dy > y { Dir::South } else { Dir::North };
            links.push((self.tile_at(x, y) * 4) as usize + dir.index());
            if dy > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
        links
    }

    /// Sends a message of `payload_bytes` from `src` to `dst` at time
    /// `now`. Returns `(arrival_time, flit_hops_consumed)` and updates
    /// link occupancy and traffic counters.
    ///
    /// Same-tile delivery costs one cycle and no NoC traffic.
    pub fn send(&mut self, src: u32, dst: u32, payload_bytes: u64, now: Cycle) -> (Cycle, u64) {
        self.messages += 1;
        if src == dst {
            return (now + 1, 0);
        }
        let flits = self.flits_for(payload_bytes);
        let mut t = now;
        let mut hops = 0u64;
        let hop_latency = self.hop_latency;
        // Move the occupancy array out so the route walk (immutable
        // borrow of the grid geometry) can charge links as it goes.
        let mut link_free = std::mem::take(&mut self.link_free);
        self.walk_route(src, dst, |link| {
            // Head flit waits for the link, then takes one hop.
            t = t.max(link_free[link]) + hop_latency;
            // The tail occupies the link for the remaining flits.
            link_free[link] = t + flits - 1;
            hops += 1;
        });
        self.link_free = link_free;
        let arrival = t + flits - 1;
        let fh = flits * hops;
        self.flit_hops += fh;
        (arrival, fh)
    }

    /// Cumulative flit-hops moved so far.
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Average hop distance from `src` to all tiles (diagnostic).
    pub fn mean_distance_from(&self, src: u32) -> f64 {
        let total: u32 = (0..self.tiles()).map(|t| self.hops(src, t)).sum();
        f64::from(total) / f64::from(self.tiles())
    }
}

/// Tiles hosting the memory controllers: a diagonal ("diamond"-style)
/// placement with one controller per mesh row, staggered by half the side
/// so that X-Y-routed traffic spreads over rows and columns.
///
/// # Panics
///
/// Panics if `count` is zero or exceeds the tile count.
pub fn mc_tiles(side: u32, count: u32) -> Vec<u32> {
    assert!(
        count > 0 && count <= side * side,
        "invalid controller count"
    );
    (0..count)
        .map(|i| {
            let x = (i * side + side / 2) / count % side;
            let y = (x + side / 2) % side;
            y * side + x
        })
        .collect()
}

/// Home memory controller for a cache line, interleaved by line address.
pub fn mc_for_line(line_number: u64, mc_count: u32) -> u32 {
    (line_number % u64::from(mc_count)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_latency_matches_hops_and_flits() {
        let mut m = Mesh::new(4, 2, 8);
        // 0 -> 15 is 3 + 3 = 6 hops; 64 B payload = 9 flits.
        let (arrival, fh) = m.send(0, 15, 64, 100);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(arrival, 100 + 6 * 2 + 9 - 1);
        assert_eq!(fh, 9 * 6);
    }

    #[test]
    fn same_tile_is_free() {
        let mut m = Mesh::new(4, 2, 8);
        let (arrival, fh) = m.send(5, 5, 64, 100);
        assert_eq!(arrival, 101);
        assert_eq!(fh, 0);
        assert_eq!(m.flit_hops(), 0);
    }

    #[test]
    fn contention_serializes_messages_on_shared_links() {
        let mut a = Mesh::new(4, 2, 8);
        let (t1, _) = a.send(0, 3, 64, 0);
        let (t2, _) = a.send(0, 3, 64, 0); // same path, same time
        assert!(t2 > t1, "second message must queue behind the first");

        // Disjoint paths do not interfere.
        let mut b = Mesh::new(4, 2, 8);
        let (t3, _) = b.send(0, 3, 64, 0);
        let (t4, _) = b.send(12, 15, 64, 0);
        assert_eq!(t3, t4);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh::new(4, 2, 8);
        // From (0,0) to (2,1): two east links then one south link.
        let path = m.route(0, m.tile_at(2, 1));
        assert_eq!(path.len(), 3);
        // East = dir 0 from tiles (0,0) and (1,0); South = dir 3 from (2,0).
        assert_eq!(path[0], (m.tile_at(0, 0) * 4) as usize);
        assert_eq!(path[1], (m.tile_at(1, 0) * 4) as usize);
        assert_eq!(path[2], (m.tile_at(2, 0) * 4 + 3) as usize);
    }

    #[test]
    fn route_length_equals_manhattan_distance() {
        let m = Mesh::new(8, 2, 8);
        for src in [0u32, 17, 42, 63] {
            for dst in [0u32, 5, 33, 63] {
                assert_eq!(m.route(src, dst).len() as u32, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn mc_placement_spreads_rows_and_columns() {
        for side in [4u32, 8, 16] {
            let mcs = mc_tiles(side, side);
            assert_eq!(mcs.len(), side as usize);
            let mut xs: Vec<u32> = mcs.iter().map(|t| t % side).collect();
            let mut ys: Vec<u32> = mcs.iter().map(|t| t / side).collect();
            xs.sort_unstable();
            xs.dedup();
            ys.sort_unstable();
            ys.dedup();
            assert_eq!(xs.len(), side as usize, "one MC per column (side {side})");
            assert_eq!(ys.len(), side as usize, "one MC per row (side {side})");
        }
    }

    #[test]
    fn mc_interleaving_covers_all_controllers() {
        let mut seen = [false; 8];
        for line in 0..64u64 {
            seen[mc_for_line(line, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flit_count_includes_header() {
        let m = Mesh::new(4, 2, 8);
        assert_eq!(m.flits_for(0), 1); // header only (e.g. a request)
        assert_eq!(m.flits_for(8), 2);
        assert_eq!(m.flits_for(64), 9);
        assert_eq!(m.flits_for(9), 3); // rounds up
    }
}
