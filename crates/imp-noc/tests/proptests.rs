//! Property tests for the mesh NoC model.

use imp_noc::{mc_tiles, Mesh};
use proptest::prelude::*;

proptest! {
    /// Arrival is never earlier than the zero-load bound, and traffic
    /// accounting equals flits x hops.
    #[test]
    fn arrival_bounded_below(src in 0u32..64, dst in 0u32..64, bytes in 0u64..128, at in 0u64..10_000) {
        let mut m = Mesh::new(8, 2, 8);
        let hops = m.hops(src, dst);
        let (arrival, fh) = m.send(src, dst, bytes, at);
        if src == dst {
            prop_assert_eq!(fh, 0);
            prop_assert_eq!(arrival, at + 1);
        } else {
            let flits = m.flits_for(bytes);
            prop_assert!(arrival >= at + u64::from(hops) * 2 + flits - 1);
            prop_assert_eq!(fh, flits * u64::from(hops));
        }
    }

    /// Under load, per-link FIFO order holds: a later send on the same
    /// path never arrives before an earlier one.
    #[test]
    fn same_path_fifo(bytes in proptest::collection::vec(0u64..128, 2..20)) {
        let mut m = Mesh::new(4, 2, 8);
        let mut last = 0;
        for b in bytes {
            let (arrival, _) = m.send(0, 15, b, 0);
            prop_assert!(arrival >= last);
            last = arrival;
        }
    }

    /// Memory-controller placement yields distinct tiles.
    #[test]
    fn mc_tiles_distinct(side in 2u32..17) {
        let tiles = mc_tiles(side, side);
        let mut sorted = tiles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), tiles.len());
        prop_assert!(tiles.iter().all(|&t| t < side * side));
    }
}
